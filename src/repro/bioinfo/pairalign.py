"""Pairwise global alignment kernels.

This module contains the compute kernels that dominate the Figure 10
profile, named after their ClustalW counterparts:

* :func:`forward_pass` -- score-only affine-gap (Gotoh) DP, vectorized
  along **anti-diagonals**: every cell of diagonal ``d`` depends only on
  diagonals ``d-1`` and ``d-2``, so each diagonal is one batch of numpy
  operations (wavefront parallelism, the same schedule a systolic FPGA
  array would use -- which is why ClustalW's ``pairalign`` kernel maps
  so well to hardware, per the case study).
* :func:`align_pair` -- full Gotoh alignment with ``int8`` traceback
  pointer matrices and the :func:`tracepath` decoder.
* :func:`diff` / :func:`hirschberg_align` -- linear-gap
  divide-and-conquer alignment in O(min(m,n)) memory (ClustalW's
  ``diff`` kernel is exactly this Myers-Miller scheme).
* :func:`pairalign` -- the all-pairs distance stage: aligns every pair
  and derives the percent-identity distance matrix that feeds the guide
  tree.

Reference implementations (:func:`needleman_wunsch_reference`,
:func:`gotoh_reference`) are deliberately naive per-cell loops used as
oracles by the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bioinfo.scoring import GapPenalty, SubstitutionMatrix
from repro.bioinfo.sequences import Sequence

NEG = -np.inf
#: Traceback op codes: consume both / consume y only (gap in x) /
#: consume x only (gap in y).
OP_MATCH, OP_INS, OP_DEL = 0, 1, 2
GAP_CHAR = "-"


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of one pairwise alignment."""

    score: float
    aligned_x: str
    aligned_y: str

    def __post_init__(self) -> None:
        if len(self.aligned_x) != len(self.aligned_y):
            raise ValueError("aligned strings must have equal length")

    @property
    def length(self) -> int:
        return len(self.aligned_x)

    @property
    def identity(self) -> float:
        """Fraction of alignment columns with identical residues."""
        if not self.aligned_x:
            return 0.0
        matches = sum(
            1
            for a, b in zip(self.aligned_x, self.aligned_y)
            if a == b and a != GAP_CHAR
        )
        return matches / self.length


# ----------------------------------------------------------------------
# Wavefront Gotoh core (shared by sequence and profile alignment)
# ----------------------------------------------------------------------
def _wavefront(
    scores: np.ndarray,
    gap: GapPenalty,
    *,
    keep_pointers: bool,
) -> tuple[float, int, np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Run the affine-gap DP over a precomputed (m, n) score matrix.

    Returns ``(best_score, best_state, ptrM, ptrE, ptrF)``; pointer
    matrices are ``None`` unless *keep_pointers*.  States: 0=M (diagonal
    / substitution), 1=E (gap in x, consumes y), 2=F (gap in y,
    consumes x).
    """
    m, n = scores.shape
    go, ge = gap.open, gap.extend

    if m == 0 or n == 0:
        # Degenerate: one side empty -> a single gap run.
        if m == 0 and n == 0:
            return 0.0, OP_MATCH, None, None, None
        length = max(m, n)
        state = 1 if m == 0 else 2
        return -gap.cost(length), state, None, None, None

    size = m + 1
    # Rolling diagonals, indexed by i (j = d - i).
    M2 = np.full(size, NEG)
    E2 = np.full(size, NEG)
    F2 = np.full(size, NEG)
    M1 = np.full(size, NEG)
    E1 = np.full(size, NEG)
    F1 = np.full(size, NEG)
    # d = 0
    M2[0] = 0.0
    # d = 1: cells (0,1) and (1,0)
    E1[0] = -go
    F1[1] = -go

    ptrM = ptrE = ptrF = None
    if keep_pointers:
        ptrM = np.zeros((m + 1, n + 1), dtype=np.int8)
        ptrE = np.zeros((m + 1, n + 1), dtype=np.int8)
        ptrF = np.zeros((m + 1, n + 1), dtype=np.int8)
        # Boundary pointer chains: row 0 is all-E, column 0 all-F.
        if n >= 2:
            ptrE[0, 2:] = 1
        if m >= 2:
            ptrF[2:, 0] = 2

    final: tuple[float, float, float] | None = None
    if m + n == 1:  # single-residue vs empty handled above; unreachable
        pass  # pragma: no cover

    for d in range(2, m + n + 1):
        Mc = np.full(size, NEG)
        Ec = np.full(size, NEG)
        Fc = np.full(size, NEG)
        # Boundary cells of this diagonal.
        if d <= n:  # cell (0, d)
            Ec[0] = -(go + (d - 1) * ge)
        if d <= m:  # cell (d, 0)
            Fc[d] = -(go + (d - 1) * ge)

        lo = max(1, d - n)
        hi = min(m, d - 1)
        if lo <= hi:
            idx = np.arange(lo, hi + 1)
            jdx = d - idx
            # M: best of the three states at (i-1, j-1) = diag d-2, index i-1.
            stackM = np.stack((M2[idx - 1], E2[idx - 1], F2[idx - 1]))
            argM = np.argmax(stackM, axis=0)
            Mc[idx] = scores[idx - 1, jdx - 1] + np.max(stackM, axis=0)
            # E: (i, j-1) = diag d-1, index i.
            stackE = np.stack((M1[idx] - go, E1[idx] - ge, F1[idx] - go))
            argE = np.argmax(stackE, axis=0)
            Ec[idx] = np.max(stackE, axis=0)
            # F: (i-1, j) = diag d-1, index i-1.
            stackF = np.stack((M1[idx - 1] - go, E1[idx - 1] - go, F1[idx - 1] - ge))
            argF = np.argmax(stackF, axis=0)
            Fc[idx] = np.max(stackF, axis=0)
            if keep_pointers:
                ptrM[idx, jdx] = argM
                ptrE[idx, jdx] = argE
                ptrF[idx, jdx] = argF

        if d == m + n:
            final = (float(Mc[m]), float(Ec[m]), float(Fc[m]))
        M2, E2, F2 = M1, E1, F1
        M1, E1, F1 = Mc, Ec, Fc

    if final is None:
        # m + n == 1 cannot happen (m, n >= 1 here); defensive.
        raise AssertionError("wavefront terminated without reaching (m, n)")
    best_state = int(np.argmax(final))
    return final[best_state], best_state, ptrM, ptrE, ptrF


def forward_pass(
    x: np.ndarray, y: np.ndarray, matrix: SubstitutionMatrix, gap: GapPenalty
) -> float:
    """Score-only global affine alignment of encoded sequences.

    O(m + n) memory: only two diagonals are retained.  This is the
    kernel the all-pairs distance stage hammers.
    """
    scores = matrix.pair_scores(x, y)
    best, _, _, _, _ = _wavefront(scores, gap, keep_pointers=False)
    return best


def _traceback_ops(
    m: int,
    n: int,
    state: int,
    ptrM: np.ndarray,
    ptrE: np.ndarray,
    ptrF: np.ndarray,
) -> list[int]:
    """Walk pointer matrices from (m, n) back to (0, 0)."""
    ops: list[int] = []
    i, j = m, n
    while i > 0 or j > 0:
        if state == OP_MATCH:
            if i == 0 or j == 0:  # pragma: no cover - defensive
                raise AssertionError("M state on a boundary")
            ops.append(OP_MATCH)
            state = int(ptrM[i, j])
            i, j = i - 1, j - 1
        elif state == OP_INS:
            ops.append(OP_INS)
            state = int(ptrE[i, j])
            j -= 1
        else:
            ops.append(OP_DEL)
            state = int(ptrF[i, j])
            i -= 1
    ops.reverse()
    return ops


def tracepath(ops: list[int], x: str, y: str) -> tuple[str, str]:
    """Decode an op list into the two gapped alignment strings."""
    ax: list[str] = []
    ay: list[str] = []
    i = j = 0
    for op in ops:
        if op == OP_MATCH:
            ax.append(x[i])
            ay.append(y[j])
            i += 1
            j += 1
        elif op == OP_INS:
            ax.append(GAP_CHAR)
            ay.append(y[j])
            j += 1
        else:
            ax.append(x[i])
            ay.append(GAP_CHAR)
            i += 1
    if i != len(x) or j != len(y):
        raise ValueError(
            f"op list consumed {i}/{len(x)} of x and {j}/{len(y)} of y"
        )
    return "".join(ax), "".join(ay)


def align_pair(
    sx: Sequence, sy: Sequence, matrix: SubstitutionMatrix, gap: GapPenalty
) -> AlignmentResult:
    """Full Gotoh global alignment of two sequences."""
    x = matrix.encode(sx.residues)
    y = matrix.encode(sy.residues)
    scores = matrix.pair_scores(x, y)
    best, state, ptrM, ptrE, ptrF = _wavefront(scores, gap, keep_pointers=True)
    m, n = len(x), len(y)
    if ptrM is None:
        # One side empty: a single run of gaps.
        ops = [OP_INS] * n + [OP_DEL] * m
    else:
        ops = _traceback_ops(m, n, state, ptrM, ptrE, ptrF)
    ax, ay = tracepath(ops, sx.residues, sy.residues)
    return AlignmentResult(score=best, aligned_x=ax, aligned_y=ay)


# ----------------------------------------------------------------------
# Linear-gap divide and conquer (ClustalW's `diff`)
# ----------------------------------------------------------------------
def _nw_last_row(
    x: np.ndarray, y: np.ndarray, matrix: SubstitutionMatrix, g: float
) -> np.ndarray:
    """Last DP row of linear-gap NW, O(n) memory.

    The in-row dependency ``H[j] = max(A[j], H[j-1] - g)`` is a max-plus
    prefix scan, computed with ``np.maximum.accumulate`` on
    ``A[k] + k*g`` -- each row is one vector operation.
    """
    n = len(y)
    prev = -g * np.arange(n + 1, dtype=np.float64)
    if len(x) == 0:
        return prev
    sub = matrix.matrix.astype(np.float64)
    offsets = g * np.arange(n + 1, dtype=np.float64)
    for i in range(1, len(x) + 1):
        a = np.empty(n + 1)
        a[0] = -g * i
        np.maximum(prev[:-1] + sub[x[i - 1], y], prev[1:] - g, out=a[1:])
        # H[j] = max_k<=j (a[k] - (j-k)*g)  via running max of a[k]+k*g.
        prev = np.maximum.accumulate(a + offsets) - offsets
    return prev


def diff(
    x: np.ndarray, y: np.ndarray, matrix: SubstitutionMatrix, g: float
) -> list[int]:
    """Myers-Miller recursion: linear-gap alignment ops in linear memory.

    Splits x at its midpoint, finds the optimal split of y by summing a
    forward last-row against a reverse last-row, and recurses.
    """
    m, n = len(x), len(y)
    if m == 0:
        return [OP_INS] * n
    if n == 0:
        return [OP_DEL] * m
    if m == 1:
        # Align the single residue of x to its best position in y -- or,
        # when even the best substitution scores worse than two extra
        # gaps (best + g*(n-1) < g*(n+1)), leave it unmatched.
        sub = matrix.matrix.astype(np.float64)
        scores = sub[x[0], y]
        k = int(np.argmax(scores))
        if scores[k] >= -2.0 * g:
            return [OP_INS] * k + [OP_MATCH] + [OP_INS] * (n - k - 1)
        return [OP_INS] * n + [OP_DEL]
    mid = m // 2
    fwd = _nw_last_row(x[:mid], y, matrix, g)
    rev = _nw_last_row(x[mid:][::-1], y[::-1], matrix, g)[::-1]
    split = int(np.argmax(fwd + rev))
    return (
        diff(x[:mid], y[:split], matrix, g) + diff(x[mid:], y[split:], matrix, g)
    )


def hirschberg_align(
    sx: Sequence, sy: Sequence, matrix: SubstitutionMatrix, gap_per_residue: float = 8.0
) -> AlignmentResult:
    """Linear-gap global alignment in O(min(m, n)) memory."""
    if gap_per_residue < 0:
        raise ValueError("gap penalty must be non-negative")
    x = matrix.encode(sx.residues)
    y = matrix.encode(sy.residues)
    ops = diff(x, y, matrix, gap_per_residue)
    ax, ay = tracepath(ops, sx.residues, sy.residues)
    score = _score_linear(ax, ay, matrix, gap_per_residue)
    return AlignmentResult(score=score, aligned_x=ax, aligned_y=ay)


def _score_linear(
    ax: str, ay: str, matrix: SubstitutionMatrix, g: float
) -> float:
    score = 0.0
    for a, b in zip(ax, ay):
        if a == GAP_CHAR or b == GAP_CHAR:
            score -= g
        else:
            score += matrix.score(a, b)
    return score


# ----------------------------------------------------------------------
# Reference oracles (tests only; naive loops)
# ----------------------------------------------------------------------
def needleman_wunsch_reference(
    sx: str, sy: str, matrix: SubstitutionMatrix, g: float
) -> float:
    """Per-cell linear-gap NW score (oracle for diff/hirschberg)."""
    x = matrix.encode(sx)
    y = matrix.encode(sy)
    m, n = len(x), len(y)
    h = np.zeros((m + 1, n + 1))
    h[:, 0] = -g * np.arange(m + 1)
    h[0, :] = -g * np.arange(n + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            h[i, j] = max(
                h[i - 1, j - 1] + matrix.matrix[x[i - 1], y[j - 1]],
                h[i - 1, j] - g,
                h[i, j - 1] - g,
            )
    return float(h[m, n])


def gotoh_reference(
    sx: str, sy: str, matrix: SubstitutionMatrix, gap: GapPenalty
) -> float:
    """Per-cell affine-gap score (oracle for the wavefront)."""
    x = matrix.encode(sx)
    y = matrix.encode(sy)
    m, n = len(x), len(y)
    go, ge = gap.open, gap.extend
    M = np.full((m + 1, n + 1), NEG)
    E = np.full((m + 1, n + 1), NEG)
    F = np.full((m + 1, n + 1), NEG)
    M[0, 0] = 0.0
    for j in range(1, n + 1):
        E[0, j] = -(go + (j - 1) * ge)
    for i in range(1, m + 1):
        F[i, 0] = -(go + (i - 1) * ge)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            s = matrix.matrix[x[i - 1], y[j - 1]]
            M[i, j] = s + max(M[i - 1, j - 1], E[i - 1, j - 1], F[i - 1, j - 1])
            E[i, j] = max(M[i, j - 1] - go, E[i, j - 1] - ge, F[i, j - 1] - go)
            F[i, j] = max(M[i - 1, j] - go, F[i - 1, j] - ge, E[i - 1, j] - go)
    return float(max(M[m, n], E[m, n], F[m, n]))


# ----------------------------------------------------------------------
# The all-pairs distance stage (Figure 10's dominant kernel)
# ----------------------------------------------------------------------
def pairalign(
    sequences: list[Sequence],
    matrix: SubstitutionMatrix,
    gap: GapPenalty,
    *,
    full_alignments: bool = True,
) -> np.ndarray:
    """All-pairs percent-identity distance matrix.

    With ``full_alignments`` each pair is fully aligned and the distance
    is ``1 - identity`` (ClustalW's "slow" accurate mode); otherwise a
    cheaper score-only normalization is used (its "quick" mode).
    Returns a symmetric (n, n) matrix with a zero diagonal.
    """
    n = len(sequences)
    if n < 2:
        raise ValueError("need at least two sequences")
    dist = np.zeros((n, n))
    if full_alignments:
        for i in range(n):
            for j in range(i + 1, n):
                result = align_pair(sequences[i], sequences[j], matrix, gap)
                dist[i, j] = dist[j, i] = 1.0 - result.identity
        return dist
    # Quick mode: normalize alignment score against self-alignments.
    encoded = [matrix.encode(s.residues) for s in sequences]
    self_scores = [
        float(matrix.pair_scores(e, e).diagonal().sum()) for e in encoded
    ]
    for i in range(n):
        for j in range(i + 1, n):
            s = forward_pass(encoded[i], encoded[j], matrix, gap)
            denom = max(min(self_scores[i], self_scores[j]), 1e-9)
            dist[i, j] = dist[j, i] = float(np.clip(1.0 - s / denom, 0.0, 2.0))
    return dist
