"""K-tuple (word-match) pairwise distances -- ClustalW's fast mode.

ClustalW's actual quick pairwise stage is Wilbur-Lipman k-tuple
matching: instead of a full DP alignment, count the k-mers two
sequences share; the fraction of shared words is a cheap similarity
proxy.  For proteins k=1 or 2, for DNA k=2..4 (longer words are too
rare to match under substitution noise).

Implementation: each sequence's k-mers are packed into integers
(base-``|alphabet|`` positional code) with one vectorized window
multiply, then multiset intersection sizes come from ``np.unique``
counts -- O(L log L) per pair instead of O(L^2).
"""

from __future__ import annotations

import numpy as np

from repro.bioinfo.scoring import SubstitutionMatrix
from repro.bioinfo.sequences import Sequence


def kmer_codes(encoded: np.ndarray, k: int, alphabet_size: int) -> np.ndarray:
    """Pack every length-*k* window of *encoded* into one integer."""
    if k <= 0:
        raise ValueError("k must be positive")
    if len(encoded) < k:
        return np.empty(0, dtype=np.int64)
    weights = alphabet_size ** np.arange(k - 1, -1, -1, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(
        encoded.astype(np.int64), k
    )
    return windows @ weights


def shared_kmer_count(a: np.ndarray, b: np.ndarray) -> int:
    """Multiset intersection size of two k-mer code arrays."""
    if a.size == 0 or b.size == 0:
        return 0
    codes = np.concatenate([a, b])
    values, inverse = np.unique(codes, return_inverse=True)
    count_a = np.bincount(inverse[: a.size], minlength=values.size)
    count_b = np.bincount(inverse[a.size :], minlength=values.size)
    return int(np.minimum(count_a, count_b).sum())


def ktuple_similarity(
    sa: Sequence, sb: Sequence, matrix: SubstitutionMatrix, *, k: int = 2
) -> float:
    """Fraction of k-tuples shared, normalized by the shorter sequence.

    1.0 for identical sequences; approaches the random-coincidence
    floor for unrelated ones.
    """
    ea = matrix.encode(sa.residues)
    eb = matrix.encode(sb.residues)
    ka = kmer_codes(ea, k, len(matrix.alphabet))
    kb = kmer_codes(eb, k, len(matrix.alphabet))
    denom = min(ka.size, kb.size)
    if denom == 0:
        return 0.0
    return shared_kmer_count(ka, kb) / denom


def ktuple_distances(
    sequences: list[Sequence], matrix: SubstitutionMatrix, *, k: int = 2
) -> np.ndarray:
    """All-pairs ``1 - similarity`` matrix (the quick-mode distance).

    Orders of magnitude faster than the full-alignment distances of
    :func:`repro.bioinfo.pairalign.pairalign`, at the cost of a noisier
    guide tree -- the standard speed/quality trade ClustalW exposes.
    """
    n = len(sequences)
    if n < 2:
        raise ValueError("need at least two sequences")
    alphabet_size = len(matrix.alphabet)
    codes = [
        kmer_codes(matrix.encode(s.residues), k, alphabet_size) for s in sequences
    ]
    dist = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            denom = min(codes[i].size, codes[j].size)
            sim = shared_kmer_count(codes[i], codes[j]) / denom if denom else 0.0
            dist[i, j] = dist[j, i] = 1.0 - sim
    return dist
