"""Bioinformatics substrate: a from-scratch ClustalW.

The paper's case study (Section V) profiles **ClustalW** from the
BioBench suite [17]: a multiple-sequence-alignment pipeline whose two
dominant kernels are *pairalign* (all-pairs pairwise alignment,
89.76 % of runtime) and *malign* (progressive profile alignment,
7.79 %).  Since BioBench's compiled binaries are not reproducible here,
this package implements the same pipeline in Python:

* :mod:`repro.bioinfo.scoring` -- substitution matrices (DNA and
  BLOSUM62) and affine gap penalties.
* :mod:`repro.bioinfo.sequences` -- sequence objects, seeded synthetic
  family generators (the BioBench-style workload), FASTA round-trip IO.
* :mod:`repro.bioinfo.pairalign` -- global pairwise alignment: an
  anti-diagonal *wavefront-vectorized* Gotoh affine-gap DP
  (``forward_pass`` score-only / full alignment with ``tracepath``),
  a linear-gap Hirschberg divide-and-conquer aligner (``diff``), and a
  brute-force reference for testing.
* :mod:`repro.bioinfo.guidetree` -- UPGMA and neighbour-joining guide
  trees from the pairwise distance matrix.
* :mod:`repro.bioinfo.malign` -- progressive alignment: profiles,
  ``prfscore`` column scoring, ``pdiff`` profile-profile alignment.
* :mod:`repro.bioinfo.clustalw` -- the pipeline facade whose call
  graph, run under :mod:`repro.profiling`, regenerates Figure 10.
"""

from repro.bioinfo.scoring import GapPenalty, SubstitutionMatrix, blosum62, dna_matrix
from repro.bioinfo.sequences import (
    Sequence,
    random_sequence,
    mutate,
    synthetic_family,
    read_fasta,
    write_fasta,
)
from repro.bioinfo.pairalign import (
    AlignmentResult,
    align_pair,
    forward_pass,
    hirschberg_align,
    needleman_wunsch_reference,
    pairalign,
)
from repro.bioinfo.guidetree import TreeNode, neighbor_joining, upgma
from repro.bioinfo.malign import Profile, malign, pdiff, prfscore
from repro.bioinfo.clustalw import ClustalWResult, clustalw
from repro.bioinfo.weights import sequence_weights, weighted_profile

__all__ = [
    "GapPenalty",
    "SubstitutionMatrix",
    "blosum62",
    "dna_matrix",
    "Sequence",
    "random_sequence",
    "mutate",
    "synthetic_family",
    "read_fasta",
    "write_fasta",
    "AlignmentResult",
    "align_pair",
    "forward_pass",
    "hirschberg_align",
    "needleman_wunsch_reference",
    "pairalign",
    "TreeNode",
    "neighbor_joining",
    "upgma",
    "Profile",
    "malign",
    "pdiff",
    "prfscore",
    "ClustalWResult",
    "clustalw",
    "sequence_weights",
    "weighted_profile",
]
