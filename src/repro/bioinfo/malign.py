"""Progressive multiple alignment (ClustalW's ``malign`` stage).

Groups of already-aligned sequences are summarized as **profiles**
(per-column residue frequency vectors); profiles are aligned with the
same wavefront affine DP as sequence pairs, but over the
profile-profile column score

.. math::

    prfscore(c_1, c_2) = f_{c_1}^T \\; S \\; f_{c_2}

which vectorizes over all column pairs as ``(F1 @ S) @ F2.T`` -- one
matrix product per merge (ClustalW's ``prfscore`` kernel).  The merge
schedule follows the guide tree's post-order (:func:`malign`), exactly
ClustalW's progressive scheme; :func:`pdiff` is the profile analogue of
the pairwise ``diff`` kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bioinfo.guidetree import TreeNode
from repro.bioinfo.pairalign import GAP_CHAR, OP_DEL, OP_INS, _wavefront
from repro.bioinfo.scoring import GapPenalty, SubstitutionMatrix
from repro.bioinfo.sequences import Sequence

#: One group member: (original sequence index, gapped residue string).
AlignedMember = tuple[int, str]


@dataclass
class Profile:
    """Column-frequency summary of an aligned group."""

    members: list[AlignedMember]
    frequencies: np.ndarray  # (columns, alphabet) float64, rows sum <= 1
    gap_fraction: np.ndarray  # (columns,) fraction of gaps per column

    @classmethod
    def from_members(
        cls, members: list[AlignedMember], matrix: SubstitutionMatrix
    ) -> "Profile":
        if not members:
            raise ValueError("a profile needs at least one member")
        lengths = {len(s) for _, s in members}
        if len(lengths) != 1:
            raise ValueError(f"members disagree on alignment length: {sorted(lengths)}")
        (length,) = lengths
        a = len(matrix.alphabet)
        freq = np.zeros((length, a))
        gaps = np.zeros(length)
        for _, gapped in members:
            for col, ch in enumerate(gapped):
                if ch == GAP_CHAR:
                    gaps[col] += 1
                else:
                    freq[col, matrix.index_of(ch)] += 1
        total = len(members)
        return cls(members=members, frequencies=freq / total, gap_fraction=gaps / total)

    @property
    def length(self) -> int:
        return self.frequencies.shape[0]

    @property
    def size(self) -> int:
        return len(self.members)


def prfscore(p1: Profile, p2: Profile, matrix: SubstitutionMatrix) -> np.ndarray:
    """All column-pair scores between two profiles: ``(F1 S) F2^T``."""
    s = matrix.matrix.astype(np.float64)
    return (p1.frequencies @ s) @ p2.frequencies.T


def pdiff(
    p1: Profile, p2: Profile, matrix: SubstitutionMatrix, gap: GapPenalty
) -> list[int]:
    """Optimal op list aligning profile *p1* (x-side) to *p2* (y-side).

    Gap penalties are scaled down by the average gap content of the
    opposing profile so that inserting against an already-gappy column
    is cheap -- the standard position-independent approximation of
    ClustalW's position-specific gap penalties.
    """
    scores = prfscore(p1, p2, matrix)
    gap_scale = 1.0 - 0.5 * (
        float(p1.gap_fraction.mean()) + float(p2.gap_fraction.mean())
    ) / 2.0
    eff = GapPenalty(open=gap.open * gap_scale, extend=gap.extend * gap_scale)
    _, state, ptrM, ptrE, ptrF = _wavefront(scores, eff, keep_pointers=True)
    m, n = p1.length, p2.length
    if ptrM is None:  # a profile of length zero cannot exist; defensive
        return [OP_INS] * n + [OP_DEL] * m
    from repro.bioinfo.pairalign import _traceback_ops

    return _traceback_ops(m, n, state, ptrM, ptrE, ptrF)


def _apply_ops(
    members_x: list[AlignedMember],
    members_y: list[AlignedMember],
    ops: list[int],
) -> list[AlignedMember]:
    """Merge two groups by inserting gap columns per the op list."""
    merged: list[AlignedMember] = []
    for idx, gapped in members_x:
        out: list[str] = []
        pos = 0
        for op in ops:
            if op == OP_INS:
                out.append(GAP_CHAR)
            else:  # MATCH or DEL consume an x column
                out.append(gapped[pos])
                pos += 1
        if pos != len(gapped):
            raise ValueError("op list does not cover profile x")
        merged.append((idx, "".join(out)))
    for idx, gapped in members_y:
        out = []
        pos = 0
        for op in ops:
            if op == OP_DEL:
                out.append(GAP_CHAR)
            else:  # MATCH or INS consume a y column
                out.append(gapped[pos])
                pos += 1
        if pos != len(gapped):
            raise ValueError("op list does not cover profile y")
        merged.append((idx, "".join(out)))
    return merged


def malign(
    sequences: list[Sequence],
    tree: TreeNode,
    matrix: SubstitutionMatrix,
    gap: GapPenalty,
    *,
    weights: dict[int, float] | None = None,
) -> list[Sequence]:
    """Progressive alignment along the guide tree.

    Returns gapped sequences in the original input order; all outputs
    share one alignment length, and stripping gaps recovers the inputs
    exactly (property-tested).

    ``weights`` enables ClustalW-style sequence weighting (the "W" --
    see :mod:`repro.bioinfo.weights`): profile frequencies are scaled
    by per-sequence weights so over-represented sequences do not
    dominate columns.
    """
    leaves = sorted(tree.leaves())
    if leaves != list(range(len(sequences))):
        raise ValueError(
            f"tree leaves {leaves} do not cover sequences 0..{len(sequences) - 1}"
        )

    groups: dict[int, list[AlignedMember]] = {
        i: [(i, sequences[i].residues)] for i in range(len(sequences))
    }

    def group_of(node: TreeNode) -> list[AlignedMember]:
        if node.is_leaf:
            return groups[node.leaf]  # type: ignore[index]
        return node_groups[id(node)]

    def build_profile(group: list[AlignedMember]) -> Profile:
        if weights is None:
            return Profile.from_members(group, matrix)
        from repro.bioinfo.weights import weighted_profile

        return weighted_profile(group, matrix, weights)

    node_groups: dict[int, list[AlignedMember]] = {}
    for node in tree.merge_order():
        assert node.left is not None and node.right is not None
        gx = group_of(node.left)
        gy = group_of(node.right)
        px = build_profile(gx)
        py = build_profile(gy)
        ops = pdiff(px, py, matrix, gap)
        node_groups[id(node)] = _apply_ops(gx, gy, ops)

    final = group_of(tree)
    by_index = dict(final)
    return [
        Sequence(
            seq_id=sequences[i].seq_id,
            residues=by_index[i],
            description=sequences[i].description,
        )
        for i in range(len(sequences))
    ]


def sum_of_pairs_score(
    alignment: list[Sequence], matrix: SubstitutionMatrix, gap: GapPenalty
) -> float:
    """Sum-of-pairs score of an MSA (gap runs charged affinely per pair).

    The standard MSA quality metric; used by tests to confirm that
    progressive alignment beats naive stacking.
    """
    n = len(alignment)
    total = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            prev = None
            for a, b in zip(alignment[i].residues, alignment[j].residues):
                if a == GAP_CHAR and b == GAP_CHAR:
                    prev = None
                    continue
                if a == GAP_CHAR:
                    total -= gap.extend if prev == "E" else gap.open
                    prev = "E"
                elif b == GAP_CHAR:
                    total -= gap.extend if prev == "F" else gap.open
                    prev = "F"
                else:
                    total += matrix.score(a, b)
                    prev = "M"
    return total
