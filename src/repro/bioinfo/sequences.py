"""Sequences: objects, synthetic families, FASTA IO.

BioBench feeds ClustalW real sequence sets; offline we generate
*synthetic families* instead: an ancestral random sequence mutated
independently along a star phylogeny (substitutions + indels).  Related
sequences therefore share detectable homology, the guide tree has real
signal, and the ClustalW pipeline does representative work -- which is
what the Figure 10 profile needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bioinfo.scoring import DNA_ALPHABET, PROTEIN_ALPHABET


@dataclass(frozen=True)
class Sequence:
    """A named biological sequence."""

    seq_id: str
    residues: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.seq_id:
            raise ValueError("sequence needs a non-empty id")
        if not self.residues:
            raise ValueError(f"sequence {self.seq_id!r} is empty")

    def __len__(self) -> int:
        return len(self.residues)


def random_sequence(
    length: int,
    *,
    alphabet: str = PROTEIN_ALPHABET,
    rng: np.random.Generator | None = None,
    seq_id: str = "random",
) -> Sequence:
    """Uniform random sequence over *alphabet*."""
    if length <= 0:
        raise ValueError("length must be positive")
    rng = rng or np.random.default_rng()
    idx = rng.integers(0, len(alphabet), size=length)
    return Sequence(seq_id=seq_id, residues="".join(alphabet[i] for i in idx))


def mutate(
    seq: Sequence,
    *,
    substitution_rate: float = 0.1,
    indel_rate: float = 0.02,
    alphabet: str | None = None,
    rng: np.random.Generator | None = None,
    seq_id: str | None = None,
) -> Sequence:
    """Apply point substitutions and single-residue indels.

    Rates are per-residue probabilities.  Deletions and insertions are
    equally likely when an indel fires.
    """
    if not 0.0 <= substitution_rate <= 1.0:
        raise ValueError("substitution_rate must be in [0, 1]")
    if not 0.0 <= indel_rate <= 1.0:
        raise ValueError("indel_rate must be in [0, 1]")
    rng = rng or np.random.default_rng()
    if alphabet is None:
        alphabet = _infer_alphabet(seq.residues)
    out: list[str] = []
    for ch in seq.residues:
        r = rng.random()
        if r < indel_rate:
            if rng.random() < 0.5:
                continue  # deletion
            out.append(alphabet[int(rng.integers(len(alphabet)))])  # insertion
            out.append(ch)
        elif r < indel_rate + substitution_rate:
            choices = alphabet.replace(ch, "") or alphabet
            out.append(choices[int(rng.integers(len(choices)))])
        else:
            out.append(ch)
    if not out:  # pathological all-deletion draw
        out.append(seq.residues[0])
    return Sequence(
        seq_id=seq_id or f"{seq.seq_id}_mut",
        residues="".join(out),
        description=f"mutant of {seq.seq_id}",
    )


def synthetic_family(
    count: int,
    length: int,
    *,
    alphabet: str = PROTEIN_ALPHABET,
    divergence: float = 0.15,
    indel_rate: float = 0.02,
    seed: int = 0,
) -> list[Sequence]:
    """A family of *count* homologous sequences (star phylogeny).

    ``divergence`` is the per-residue substitution probability applied
    independently to each family member.  Deterministic under *seed*.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    ancestor = random_sequence(length, alphabet=alphabet, rng=rng, seq_id="ancestor")
    return [
        mutate(
            ancestor,
            substitution_rate=divergence,
            indel_rate=indel_rate,
            alphabet=alphabet,
            rng=rng,
            seq_id=f"seq{i:03d}",
        )
        for i in range(count)
    ]


def _infer_alphabet(residues: str) -> str:
    if set(residues.upper()) <= set(DNA_ALPHABET):
        return DNA_ALPHABET
    return PROTEIN_ALPHABET


# ----------------------------------------------------------------------
# FASTA IO
# ----------------------------------------------------------------------
def write_fasta(sequences: list[Sequence], path: str | Path, *, width: int = 70) -> None:
    """Write sequences in FASTA format, wrapping at *width* columns."""
    if width <= 0:
        raise ValueError("line width must be positive")
    lines: list[str] = []
    for seq in sequences:
        header = f">{seq.seq_id}"
        if seq.description:
            header += f" {seq.description}"
        lines.append(header)
        for start in range(0, len(seq.residues), width):
            lines.append(seq.residues[start : start + width])
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_fasta(path: str | Path) -> list[Sequence]:
    """Parse a FASTA file; raises ValueError on malformed records."""
    sequences: list[Sequence] = []
    seq_id: str | None = None
    description = ""
    chunks: list[str] = []

    def flush() -> None:
        nonlocal seq_id, description, chunks
        if seq_id is not None:
            if not chunks:
                raise ValueError(f"FASTA record {seq_id!r} has no residues")
            sequences.append(
                Sequence(seq_id=seq_id, residues="".join(chunks), description=description)
            )
        seq_id, description, chunks = None, "", []

    for lineno, raw in enumerate(Path(path).read_text(encoding="ascii").splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            head = line[1:].strip()
            if not head:
                raise ValueError(f"line {lineno}: empty FASTA header")
            parts = head.split(maxsplit=1)
            seq_id = parts[0]
            description = parts[1] if len(parts) > 1 else ""
        else:
            if seq_id is None:
                raise ValueError(f"line {lineno}: sequence data before any header")
            chunks.append(line)
    flush()
    return sequences
