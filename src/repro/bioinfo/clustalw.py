"""The ClustalW pipeline (the case study's application, Section V).

Three stages, exactly the structure the paper's profiling identifies:

1. **pairalign** -- all-pairs pairwise alignment -> distance matrix
   (89.76 % of runtime in Figure 10: :math:`\\binom{n}{2}` full DP
   alignments);
2. **guide tree** -- UPGMA or neighbour joining over the distances;
3. **malign** -- progressive profile alignment along the tree
   (7.79 % in Figure 10: only :math:`n - 1` profile DPs).

Running :func:`clustalw` under :class:`repro.profiling.CallGraphProfiler`
regenerates the Figure 10 kernel ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bioinfo.guidetree import TreeNode, neighbor_joining, upgma
from repro.bioinfo.malign import malign, sum_of_pairs_score
from repro.bioinfo.pairalign import pairalign
from repro.bioinfo.scoring import GapPenalty, SubstitutionMatrix, blosum62
from repro.bioinfo.sequences import Sequence


@dataclass(frozen=True)
class ClustalWResult:
    """Full output of one ClustalW run."""

    alignment: list[Sequence]
    distances: np.ndarray
    tree: TreeNode
    sp_score: float

    @property
    def length(self) -> int:
        return len(self.alignment[0].residues)


def clustalw(
    sequences: list[Sequence],
    *,
    matrix: SubstitutionMatrix | None = None,
    gap: GapPenalty | None = None,
    tree_method: str = "upgma",
    quick_distances: bool = False,
    distance_method: str = "full",
    ktuple_k: int = 2,
    use_weights: bool = False,
) -> ClustalWResult:
    """Multiple-sequence alignment of *sequences*.

    Parameters
    ----------
    matrix, gap:
        Scoring model; defaults to BLOSUM62 with ClustalW-like
        open 10 / extend 0.5 penalties.
    tree_method:
        ``"upgma"`` or ``"nj"``.
    quick_distances:
        Back-compat alias for ``distance_method="score"``.
    distance_method:
        ``"full"`` (accurate: full pairwise alignments), ``"score"``
        (score-only DP), or ``"ktuple"`` (Wilbur-Lipman word matching,
        ClustalW's actual fast mode; see :mod:`repro.bioinfo.ktuple`).
    ktuple_k:
        Word length for the k-tuple mode.
    use_weights:
        Apply Thompson-Higgins-Gibson sequence weighting derived from
        the guide tree (the "W" of ClustalW;
        :mod:`repro.bioinfo.weights`).
    """
    if len(sequences) < 2:
        raise ValueError("ClustalW needs at least two sequences")
    ids = [s.seq_id for s in sequences]
    if len(set(ids)) != len(ids):
        raise ValueError("sequence ids must be unique")
    matrix = matrix or blosum62()
    gap = gap or GapPenalty(10.0, 0.5)

    if quick_distances:
        distance_method = "score"
    if distance_method == "ktuple":
        from repro.bioinfo.ktuple import ktuple_distances

        distances = ktuple_distances(sequences, matrix, k=ktuple_k)
    elif distance_method in ("full", "score"):
        distances = pairalign(
            sequences, matrix, gap, full_alignments=distance_method == "full"
        )
    else:
        raise ValueError(
            f"unknown distance method {distance_method!r}; "
            "use 'full', 'score', or 'ktuple'"
        )

    if tree_method == "upgma":
        tree = upgma(distances)
    elif tree_method == "nj":
        tree = neighbor_joining(distances)
    else:
        raise ValueError(f"unknown tree method {tree_method!r}; use 'upgma' or 'nj'")

    weights = None
    if use_weights:
        from repro.bioinfo.weights import sequence_weights

        weights = sequence_weights(tree)

    alignment = malign(sequences, tree, matrix, gap, weights=weights)
    return ClustalWResult(
        alignment=alignment,
        distances=distances,
        tree=tree,
        sp_score=sum_of_pairs_score(alignment, matrix, gap),
    )
