"""Guide trees from pairwise distance matrices.

ClustalW builds its progressive-alignment order from a guide tree --
historically neighbour-joining; UPGMA is the cheaper alternative used
by later versions for large inputs.  Both are provided; both return the
same :class:`TreeNode` structure, whose post-order internal nodes give
the merge schedule for :mod:`repro.bioinfo.malign`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TreeNode:
    """A rooted binary guide-tree node.

    Leaves carry the sequence index (``leaf`` is not None); internal
    nodes carry two children and the height/branch data the builder
    produced.
    """

    leaf: int | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    height: float = 0.0

    def __post_init__(self) -> None:
        internal = self.left is not None or self.right is not None
        if internal and (self.left is None or self.right is None):
            raise ValueError("internal nodes need exactly two children")
        if internal and self.leaf is not None:
            raise ValueError("a node is either a leaf or internal")
        if not internal and self.leaf is None:
            raise ValueError("leaf nodes need a sequence index")

    @property
    def is_leaf(self) -> bool:
        return self.leaf is not None

    def leaves(self) -> list[int]:
        """Leaf indices in left-to-right order."""
        if self.is_leaf:
            return [self.leaf]  # type: ignore[list-item]
        assert self.left is not None and self.right is not None
        return self.left.leaves() + self.right.leaves()

    def merge_order(self) -> list["TreeNode"]:
        """Internal nodes in post-order: the progressive-alignment
        schedule (children always precede parents)."""
        if self.is_leaf:
            return []
        assert self.left is not None and self.right is not None
        return self.left.merge_order() + self.right.merge_order() + [self]

    def newick(self, names: list[str] | None = None) -> str:
        """Render as a Newick string (heights as node comments omitted)."""
        if self.is_leaf:
            idx = self.leaf
            return names[idx] if names is not None else f"s{idx}"
        assert self.left is not None and self.right is not None
        return f"({self.left.newick(names)},{self.right.newick(names)})"


def _check_distance_matrix(dist: np.ndarray) -> int:
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError("distance matrix must be square")
    n = dist.shape[0]
    if n < 2:
        raise ValueError("need at least two taxa")
    if not np.allclose(dist, dist.T):
        raise ValueError("distance matrix must be symmetric")
    if not np.allclose(np.diag(dist), 0.0):
        raise ValueError("distance matrix must have a zero diagonal")
    if (dist < 0).any():
        raise ValueError("distances must be non-negative")
    return n


def upgma(dist: np.ndarray) -> TreeNode:
    """Unweighted pair-group clustering.

    Classic O(n^3) agglomeration: repeatedly join the closest pair of
    clusters; inter-cluster distance is the size-weighted average.
    """
    n = _check_distance_matrix(dist)
    d = dist.astype(np.float64).copy()
    active = list(range(n))
    nodes: dict[int, TreeNode] = {i: TreeNode(leaf=i) for i in range(n)}
    sizes: dict[int, int] = {i: 1 for i in range(n)}
    next_id = n

    while len(active) > 1:
        # Closest active pair (ties -> lowest indices, deterministic).
        best = (float("inf"), -1, -1)
        for ai in range(len(active)):
            for bi in range(ai + 1, len(active)):
                a, b = active[ai], active[bi]
                if d[a, b] < best[0]:
                    best = (d[a, b], a, b)
        _, a, b = best
        height = d[a, b] / 2.0
        merged = TreeNode(left=nodes[a], right=nodes[b], height=height)
        # Grow the matrix by one row/col for the merged cluster.
        new_row = np.zeros(d.shape[0] + 1)
        for c in active:
            if c in (a, b):
                continue
            new_row[c] = (sizes[a] * d[a, c] + sizes[b] * d[b, c]) / (
                sizes[a] + sizes[b]
            )
        d = np.pad(d, ((0, 1), (0, 1)))
        d[next_id, : next_id + 1] = new_row
        d[: next_id + 1, next_id] = new_row
        nodes[next_id] = merged
        sizes[next_id] = sizes[a] + sizes[b]
        active = [c for c in active if c not in (a, b)] + [next_id]
        next_id += 1

    return nodes[active[0]]


def neighbor_joining(dist: np.ndarray) -> TreeNode:
    """Saitou-Nei neighbour joining, rooted at the final join.

    NJ produces an unrooted tree; we root it at the last merge, which
    is what ClustalW effectively does before progressive alignment
    (mid-point rooting details do not change the merge partition for
    reasonable inputs and are out of scope).
    """
    n = _check_distance_matrix(dist)
    d = dist.astype(np.float64).copy()
    active = list(range(n))
    nodes: dict[int, TreeNode] = {i: TreeNode(leaf=i) for i in range(n)}
    next_id = n

    while len(active) > 2:
        k = len(active)
        sub = d[np.ix_(active, active)]
        totals = sub.sum(axis=1)
        # Q-matrix criterion.
        q = (k - 2) * sub - totals[:, None] - totals[None, :]
        np.fill_diagonal(q, np.inf)
        ai, bi = np.unravel_index(int(np.argmin(q)), q.shape)
        a, b = active[ai], active[bi]
        merged = TreeNode(left=nodes[a], right=nodes[b], height=d[a, b] / 2.0)
        new_row = np.zeros(d.shape[0] + 1)
        for c in active:
            if c in (a, b):
                continue
            new_row[c] = 0.5 * (d[a, c] + d[b, c] - d[a, b])
        new_row = np.maximum(new_row, 0.0)
        d = np.pad(d, ((0, 1), (0, 1)))
        d[next_id, : next_id + 1] = new_row
        d[: next_id + 1, next_id] = new_row
        nodes[next_id] = merged
        active = [c for c in active if c not in (a, b)] + [next_id]
        next_id += 1

    a, b = active
    return TreeNode(left=nodes[a], right=nodes[b], height=d[a, b] / 2.0)
