"""Sequence weighting -- the "W" in ClustalW.

ClustalW's headline improvement over plain progressive alignment is
*sequence weighting* (Thompson, Higgins & Gibson, 1994): sequences that
are over-represented in the input (near-duplicates) are down-weighted
so they do not dominate profile columns, and divergent sequences are
up-weighted.  Weights derive from the guide tree: each sequence's
weight is the sum, over the edges on its root path, of the edge's
branch length divided by the number of leaves sharing that edge.
Duplicated sequences share all their edges, so each copy gets half the
weight a unique sequence would.

Our UPGMA trees are ultrametric with node heights; branch length of an
edge is ``parent.height - child.height`` (leaves have height 0).
:func:`sequence_weights` implements the scheme;
:func:`weighted_profile` folds weights into profile frequencies so
:func:`repro.bioinfo.malign.malign` can align with them.
"""

from __future__ import annotations

import numpy as np

from repro.bioinfo.guidetree import TreeNode
from repro.bioinfo.malign import AlignedMember, Profile
from repro.bioinfo.pairalign import GAP_CHAR
from repro.bioinfo.scoring import SubstitutionMatrix


def sequence_weights(tree: TreeNode, *, normalize: bool = True) -> dict[int, float]:
    """Thompson-Higgins-Gibson weights for every leaf of *tree*.

    With ``normalize`` the weights are scaled to mean 1.0 (ClustalW
    normalizes so weighting never changes the overall score magnitude).
    Degenerate trees (all branch lengths zero, e.g. identical
    sequences) fall back to uniform weights.
    """
    weights: dict[int, float] = {leaf: 0.0 for leaf in tree.leaves()}

    def descend(node: TreeNode, parent_height: float) -> list[int]:
        if node.is_leaf:
            branch = max(0.0, parent_height - 0.0)
            assert node.leaf is not None
            weights[node.leaf] += branch  # shared by exactly one leaf
            return [node.leaf]
        branch = max(0.0, parent_height - node.height)
        assert node.left is not None and node.right is not None
        leaves = descend(node.left, node.height) + descend(node.right, node.height)
        if leaves and branch > 0.0:
            share = branch / len(leaves)
            for leaf in leaves:
                weights[leaf] += share
        return leaves

    descend(tree, tree.height)

    total = sum(weights.values())
    if total <= 0.0:
        return {leaf: 1.0 for leaf in weights}
    if normalize:
        mean = total / len(weights)
        return {leaf: w / mean for leaf, w in weights.items()}
    return dict(weights)


def weighted_profile(
    members: list[AlignedMember],
    matrix: SubstitutionMatrix,
    weights: dict[int, float],
) -> Profile:
    """A :class:`Profile` whose column frequencies are weight-scaled.

    Each member contributes ``weight / total_weight`` instead of
    ``1 / count`` to its residue's frequency, so near-duplicate
    sequences cannot dominate a column.
    """
    if not members:
        raise ValueError("a profile needs at least one member")
    lengths = {len(s) for _, s in members}
    if len(lengths) != 1:
        raise ValueError(f"members disagree on alignment length: {sorted(lengths)}")
    (length,) = lengths
    missing = [idx for idx, _ in members if idx not in weights]
    if missing:
        raise KeyError(f"no weights for members {missing}")

    total = sum(weights[idx] for idx, _ in members)
    if total <= 0:
        raise ValueError("member weights must sum to a positive value")
    a = len(matrix.alphabet)
    freq = np.zeros((length, a))
    gaps = np.zeros(length)
    for idx, gapped in members:
        share = weights[idx] / total
        for col, ch in enumerate(gapped):
            if ch == GAP_CHAR:
                gaps[col] += share
            else:
                freq[col, matrix.index_of(ch)] += share
    return Profile(members=members, frequencies=freq, gap_fraction=gaps)
