"""Plain-text reporting: tables, bar charts, and timelines.

The paper's artifacts are tables (I, II) and figures (the Figure 10
profile bars, the Figure 8 timeline).  This module renders their
regenerated counterparts as alignment-stable ASCII so benches, examples
and the CLI share one presentation layer (no plotting dependencies).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.metrics import SimulationReport


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render a left-aligned table with a header rule.

    Column widths fit the widest cell; numeric cells are right-aligned.
    """
    if not headers:
        raise ValueError("a table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells; expected {len(headers)}"
            )

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def align(text: str, width: int, value: object) -> str:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return text.rjust(width)
        return text.ljust(width)

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for raw, row in zip(rows, cells):
        lines.append("  ".join(align(c, w, v) for c, w, v in zip(row, widths, raw)))
    return "\n".join(lines)


#: (row label, SimulationReport attribute, format spec) for the fault
#: -recovery metrics introduced by the fault-injection layer.
RECOVERY_METRICS: tuple[tuple[str, str, str], ...] = (
    ("fault events", "fault_events", "d"),
    ("retries", "retries", "d"),
    ("GPP fallbacks", "gpp_fallbacks", "d"),
    ("availability", "availability", ".1%"),
    ("MTTR s", "mttr_s", ".3f"),
    ("wasted work s", "wasted_work_s", ".2f"),
    ("wasted slice-s", "wasted_slice_seconds", ".1f"),
    ("goodput tasks/s", "goodput_tasks_per_s", ".3f"),
)

#: Same, for the adaptive resilience layer (breakers, deadlines,
#: checkpoints, speculation).  All-zero across every report = the layer
#: was disabled, and :func:`recovery_table` omits the block.
RESILIENCE_METRICS: tuple[tuple[str, str, str], ...] = (
    ("soft deadline misses", "deadline_soft_misses", "d"),
    ("hard deadline misses", "deadline_hard_misses", "d"),
    ("deadline miss rate", "deadline_miss_rate", ".1%"),
    ("quarantines", "quarantines", "d"),
    ("quarantine time s", "quarantine_time_s", ".2f"),
    ("checkpoints", "checkpoints", "d"),
    ("checkpoint overhead s", "checkpoint_overhead_s", ".3f"),
    ("wasted work saved s", "wasted_work_saved_s", ".2f"),
    ("migrations", "migrations", "d"),
    ("speculative launches", "speculative_launches", "d"),
    ("speculative wins", "speculative_wins", "d"),
    ("speculative wasted s", "speculative_wasted_s", ".2f"),
)

#: Same, for the control-plane fault-tolerance layer (heartbeat
#: detection, replicated-RMS failover, lease-based orphan recovery).
#: All-zero across every report = no control-plane faults fired, and
#: :func:`recovery_table` omits the block.
FAILOVER_METRICS: tuple[tuple[str, str, str], ...] = (
    ("RMS crashes", "rms_crashes", "d"),
    ("RMS gray failures", "rms_gray_events", "d"),
    ("failovers", "failovers", "d"),
    ("control-plane dark s", "control_plane_downtime_s", ".2f"),
    ("detections", "detections", "d"),
    ("detect latency p50 s", "detection_latency_p50_s", ".3f"),
    ("detect latency p95 s", "detection_latency_p95_s", ".3f"),
    ("false suspicions", "false_suspicions", "d"),
    ("leases expired", "leases_expired", "d"),
    ("orphans recovered", "orphans_recovered", "d"),
)


def recovery_table(
    entries: Sequence[tuple[str, "SimulationReport"]],
    *,
    title: str = "Recovery & resilience",
) -> str:
    """Recovery + resilience metrics of several runs, side by side.

    ``entries`` pairs a column label (strategy name, scenario...) with
    its :class:`~repro.sim.metrics.SimulationReport`.  Metrics are rows
    so runs line up for comparison; the resilience block only appears
    when at least one run actually exercised the resilience layer.
    """
    if not entries:
        raise ValueError("recovery_table needs at least one report")
    metrics = list(RECOVERY_METRICS)
    reports = [report for _, report in entries]
    if any(getattr(r, attr) for _, attr, _ in RESILIENCE_METRICS for r in reports):
        metrics += RESILIENCE_METRICS
    if any(getattr(r, attr) for _, attr, _ in FAILOVER_METRICS for r in reports):
        metrics += FAILOVER_METRICS
    rows = [
        (label, *(format(getattr(r, attr), spec) for r in reports))
        for label, attr, spec in metrics
    ]
    rows.insert(
        0, ("done/fail/disc", *(f"{r.completed}/{r.failed}/{r.discarded}" for r in reports))
    )
    return ascii_table(["metric", *(label for label, _ in entries)], rows, title=title)


def recovery_json(
    entries: Sequence[tuple[str, "SimulationReport"]],
) -> dict[str, dict[str, object]]:
    """The :func:`recovery_table` numbers as a JSON-ready mapping.

    Keys are the entry labels; values map metric attribute names to raw
    (unformatted) numbers, resilience metrics always included.
    """
    out: dict[str, dict[str, object]] = {}
    for label, report in entries:
        record: dict[str, object] = {
            "completed": report.completed,
            "failed": report.failed,
            "discarded": report.discarded,
        }
        for _, attr, _ in (*RECOVERY_METRICS, *RESILIENCE_METRICS, *FAILOVER_METRICS):
            record[attr] = getattr(report, attr)
        out[label] = record
    return out


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the maximum value.

    The Figure 10 renderer: kernel names on the left, ``#`` bars sized
    by time share, numeric value on the right.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("a chart needs at least one bar")
    if width <= 0:
        raise ValueError("width must be positive")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")

    peak = max(values) or 1.0
    label_width = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def ascii_timeline(
    spans: Sequence[tuple[str, float, float]],
    *,
    width: int = 60,
    title: str = "",
) -> str:
    """Gantt-style timeline: ``(label, start, end)`` spans on one clock.

    The Figure 8 renderer: each task is a row of ``=`` between its start
    and finish columns.
    """
    if not spans:
        raise ValueError("a timeline needs at least one span")
    for label, start, end in spans:
        if end < start:
            raise ValueError(f"span {label!r} ends before it starts")
    horizon = max(end for _, _, end in spans) or 1.0
    label_width = max(len(l) for l, _, _ in spans)

    def col(t: float) -> int:
        return min(width, round(width * t / horizon))

    lines = [title] if title else []
    for label, start, end in spans:
        a, b = col(start), max(col(start) + 1, col(end))
        row = " " * a + "=" * (b - a)
        lines.append(f"{label.ljust(label_width)} |{row.ljust(width)}| {start:.2f}-{end:.2f}")
    lines.append(f"{' ' * label_width} 0{' ' * (width - 2)}{horizon:.2f} s")
    return "\n".join(lines)
