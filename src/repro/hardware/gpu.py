"""GPU model.

Table I lists GPUs among the enhanced processing elements of Figure 1,
parameterized by: model, shader cores, warp size, SIMD pipeline width,
shared memory per core, and memory frequency.  The paper's framework is
"extendable to add more types of processing elements" (Section III);
including the GPU class demonstrates that extension point and lets the
matchmaker handle a third PE class end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """A GPU processing element, per Table I.

    Parameters
    ----------
    model:
        GPU model name, e.g. ``"Tesla-C1060"``.
    shader_cores:
        Number of data-parallel cores.
    warp_size:
        Number of SIMD threads grouped together.
    simd_pipeline_width:
        Width of the SIMD pipeline.
    shared_mem_per_core_kb:
        Shared memory per core in KB.
    memory_frequency_mhz:
        Maximum memory clock rate.
    core_frequency_mhz:
        Shader clock used by the throughput model.
    """

    model: str
    shader_cores: int
    warp_size: int = 32
    simd_pipeline_width: int = 8
    shared_mem_per_core_kb: int = 16
    memory_frequency_mhz: float = 800.0
    core_frequency_mhz: float = 1300.0

    def __post_init__(self) -> None:
        if self.shader_cores <= 0:
            raise ValueError("shader core count must be positive")
        if self.warp_size <= 0:
            raise ValueError("warp size must be positive")
        if self.simd_pipeline_width <= 0:
            raise ValueError("SIMD pipeline width must be positive")

    @property
    def peak_gflops(self) -> float:
        """Single-precision peak: cores x 2 ops (FMA) x clock."""
        return self.shader_cores * 2.0 * self.core_frequency_mhz / 1e3

    def execution_time_s(self, mega_instructions: float, parallel_fraction: float = 0.95) -> float:
        """Seconds to execute a workload whose *parallel_fraction* maps to
        the SIMD lanes; the serial remainder crawls on a single lane.
        """
        if mega_instructions < 0:
            raise ValueError("workload must be non-negative")
        if not 0.0 <= parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        lane_mips = self.core_frequency_mhz  # one op per cycle per lane
        total_mips = lane_mips * self.shader_cores
        serial = (1.0 - parallel_fraction) * mega_instructions / lane_mips
        parallel = parallel_fraction * mega_instructions / total_mips
        return serial + parallel

    def capabilities(self) -> dict[str, object]:
        """Capability descriptor used by ExecReq matching (Section IV)."""
        return {
            "pe_class": "GPU",
            "gpu_model": self.model,
            "shader_cores": self.shader_cores,
            "warp_size": self.warp_size,
            "simd_pipeline_width": self.simd_pipeline_width,
            "shared_mem_per_core_kb": self.shared_mem_per_core_kb,
            "memory_frequency_mhz": self.memory_frequency_mhz,
            "core_frequency_mhz": self.core_frequency_mhz,
            "peak_gflops": self.peak_gflops,
        }
