"""Soft-core VLIW processor model (rho-VEX style).

Section III-B1 of the paper describes the *pre-determined hardware
configuration* scenario: compute kernels optimized for a particular
soft-core architecture -- the example given is the Delft rho-VEX VLIW
processor [15] -- are executed on that soft core, which the grid
configures onto an available RPE.  Table I parameterizes a soft core by:
FU type, issue width, memory, register file, pipeline, and clusters.

:class:`SoftcoreSpec` models such a processor together with a
first-order *area and frequency cost model*, so the framework can decide
whether a given soft-core configuration fits on a given FPGA fabric and
how fast it will run there.  The area model is a linear composition of
per-resource slice costs, the same modeling style the rho-VEX papers use
for design-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.fpga import FPGADevice

#: First-order slice costs of soft-core building blocks.  Absolute values
#: are calibrated to published rho-VEX synthesis results (a 4-issue
#: rho-VEX occupies roughly 8-10k Virtex-II Pro slices); the framework
#: only relies on the *relative* scaling with issue width and FU mix.
_SLICES_PER_ALU = 420
_SLICES_PER_MUL = 610
_SLICES_PER_MEM_UNIT = 380
_SLICES_PER_BRANCH_UNIT = 240
_SLICES_PER_ISSUE_SLOT = 350
_SLICES_PER_REGFILE_PORT = 55
_SLICES_BASE = 900
_BRAM_KB_PER_MEMORY_KB = 1.0


@dataclass(frozen=True)
class FunctionalUnitMix:
    """Counts of each functional-unit type (Table I's "FU type")."""

    alus: int = 4
    multipliers: int = 2
    memory_units: int = 1
    branch_units: int = 1

    def __post_init__(self) -> None:
        if min(self.alus, self.multipliers, self.memory_units, self.branch_units) < 0:
            raise ValueError("functional-unit counts must be non-negative")
        if self.alus == 0:
            raise ValueError("a VLIW soft core needs at least one ALU")

    @property
    def total(self) -> int:
        return self.alus + self.multipliers + self.memory_units + self.branch_units


@dataclass(frozen=True)
class SoftcoreSpec:
    """A parameterized VLIW soft-core processor, per Table I.

    Parameters
    ----------
    name:
        Configuration name, e.g. ``"rho-VEX-4issue"``.
    issue_width:
        Number of operations issued per cycle ("Issue Width").
    fu_mix:
        Functional-unit composition ("FU Type").
    imem_kb, dmem_kb:
        Instruction and data memory sizes ("Memory").
    registers:
        General-purpose register-file size ("Register File").
    pipeline_stages:
        Depth of the pipeline ("Pipeline").
    clusters:
        Number of clusters; each cluster replicates the datapath
        ("Clusters").
    mips_per_mhz:
        Sustained MIPS delivered per MHz of core clock; a VLIW ideally
        retires ``issue_width`` ops/cycle but stalls reduce that, so this
        defaults to ``0.7 * issue_width``.
    """

    name: str
    issue_width: int = 4
    fu_mix: FunctionalUnitMix = field(default_factory=FunctionalUnitMix)
    imem_kb: int = 32
    dmem_kb: int = 32
    registers: int = 64
    pipeline_stages: int = 5
    clusters: int = 1
    mips_per_mhz: float | None = None

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue width must be positive")
        if self.clusters <= 0:
            raise ValueError("cluster count must be positive")
        if self.registers <= 0:
            raise ValueError("register file must be positive")
        if self.pipeline_stages <= 0:
            raise ValueError("pipeline depth must be positive")
        if self.fu_mix.total < self.issue_width:
            raise ValueError(
                "functional units must be able to fill the issue width: "
                f"{self.fu_mix.total} FUs < issue width {self.issue_width}"
            )

    # ------------------------------------------------------------------
    # Area / frequency cost model
    # ------------------------------------------------------------------
    def required_slices(self) -> int:
        """Estimated slices needed to place this core on an FPGA fabric."""
        per_cluster = (
            _SLICES_BASE
            + self.issue_width * _SLICES_PER_ISSUE_SLOT
            + self.fu_mix.alus * _SLICES_PER_ALU
            + self.fu_mix.multipliers * _SLICES_PER_MUL
            + self.fu_mix.memory_units * _SLICES_PER_MEM_UNIT
            + self.fu_mix.branch_units * _SLICES_PER_BRANCH_UNIT
            # Each issue slot needs 2 read ports + 1 write port.
            + self.registers * 3 * _SLICES_PER_REGFILE_PORT * self.issue_width // 64
        )
        return per_cluster * self.clusters

    def required_bram_kb(self) -> int:
        """Block RAM needed for instruction + data memories."""
        return int((self.imem_kb + self.dmem_kb) * _BRAM_KB_PER_MEMORY_KB) * self.clusters

    def achievable_frequency_mhz(self, device: FPGADevice) -> float:
        """Clock the core reaches on *device*.

        Wider issue and shallower pipelines lengthen the critical path;
        we model frequency as a fraction of the device maximum that
        shrinks with issue width and grows with pipeline depth.
        """
        width_penalty = 1.0 / (1.0 + 0.12 * (self.issue_width - 1))
        depth_bonus = min(1.0, 0.55 + 0.09 * self.pipeline_stages)
        # Soft logic never reaches hard-silicon frequency; 1/3 is typical.
        return device.max_frequency_mhz * width_penalty * depth_bonus / 3.0

    def effective_mips(self, device: FPGADevice) -> float:
        """Delivered MIPS when this core is configured on *device*."""
        per_mhz = self.mips_per_mhz if self.mips_per_mhz is not None else 0.7 * self.issue_width
        return per_mhz * self.achievable_frequency_mhz(device) * self.clusters

    def fits_on(self, device: FPGADevice) -> bool:
        """Whether the core fits the device's slice and BRAM budget."""
        return (
            self.required_slices() <= device.slices
            and self.required_bram_kb() <= device.bram_kb
        )

    def capabilities(self, device: FPGADevice | None = None) -> dict[str, object]:
        """Capability descriptor; when *device* is given, includes the
        delivered frequency/MIPS on that device so a soft core configured
        on an RPE can be matched like a GPP (Section III-A fallback).
        """
        caps: dict[str, object] = {
            "pe_class": "SOFTCORE",
            "softcore_name": self.name,
            "issue_width": self.issue_width,
            "alus": self.fu_mix.alus,
            "multipliers": self.fu_mix.multipliers,
            "memory_units": self.fu_mix.memory_units,
            "branch_units": self.fu_mix.branch_units,
            "imem_kb": self.imem_kb,
            "dmem_kb": self.dmem_kb,
            "registers": self.registers,
            "pipeline_stages": self.pipeline_stages,
            "clusters": self.clusters,
            "required_slices": self.required_slices(),
            "required_bram_kb": self.required_bram_kb(),
        }
        if device is not None:
            caps["frequency_mhz"] = self.achievable_frequency_mhz(device)
            caps["mips"] = self.effective_mips(device)
            caps["host_device_model"] = device.model
        return caps


#: Ready-made rho-VEX-style configurations used by examples and tests.
RHO_VEX_2ISSUE = SoftcoreSpec(
    name="rho-VEX-2issue",
    issue_width=2,
    fu_mix=FunctionalUnitMix(alus=2, multipliers=1, memory_units=1, branch_units=1),
    registers=64,
    pipeline_stages=5,
)
RHO_VEX_4ISSUE = SoftcoreSpec(name="rho-VEX-4issue", issue_width=4)
RHO_VEX_8ISSUE = SoftcoreSpec(
    name="rho-VEX-8issue",
    issue_width=8,
    fu_mix=FunctionalUnitMix(alus=8, multipliers=4, memory_units=2, branch_units=1),
    registers=64,
    pipeline_stages=6,
)
