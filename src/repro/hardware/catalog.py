"""Concrete device catalog.

The case study (Section V) names real parts: Virtex-5 devices "with more
than 24,000 slices" on Node1/Node2, and a Virtex-6 XC6VLX365T on Node0.
This catalog models the Xilinx Virtex-5 LX/LXT line, the XC6VLX365T, and
a few smaller parts used by tests and examples.  Slice/LUT counts follow
the public data sheets (Virtex-5 slices contain 4 six-input LUTs; logic
cells ~= 1.6x LUTs per Xilinx marketing arithmetic); BRAM is totaled in
KB.  Reconfiguration bandwidths model the SelectMAP/ICAP port at 32 bit
x 100 MHz = 400 MB/s for Virtex-5/6 and slower ports for older families.
"""

from __future__ import annotations

from repro.hardware.fpga import FPGADevice, SpeedGrade


def _v5(model: str, slices: int, bram_kb: int, dsp: int, iobs: int, macs: int = 0) -> FPGADevice:
    luts = slices * 4
    return FPGADevice(
        model=model,
        family="virtex-5",
        logic_cells=int(luts * 1.6),
        slices=slices,
        luts=luts,
        bram_kb=bram_kb,
        dsp_slices=dsp,
        speed_grade=SpeedGrade.GRADE_2,
        base_frequency_mhz=450.0,
        reconfig_bandwidth_mbps=400.0,
        iobs=iobs,
        ethernet_macs=macs,
        supports_partial_reconfig=True,
    )


def _v6(model: str, slices: int, bram_kb: int, dsp: int, iobs: int, macs: int = 0) -> FPGADevice:
    luts = slices * 4
    return FPGADevice(
        model=model,
        family="virtex-6",
        logic_cells=int(luts * 1.6),
        slices=slices,
        luts=luts,
        bram_kb=bram_kb,
        dsp_slices=dsp,
        speed_grade=SpeedGrade.GRADE_2,
        base_frequency_mhz=600.0,
        reconfig_bandwidth_mbps=400.0,
        iobs=iobs,
        ethernet_macs=macs,
        supports_partial_reconfig=True,
    )


#: All modeled devices, keyed by part number.
DEVICE_CATALOG: dict[str, FPGADevice] = {
    d.model: d
    for d in [
        # --- Virtex-5 LX / LXT (slice counts per DS100) -------------------
        _v5("XC5VLX30", 4_800, 144, 32, 400),
        _v5("XC5VLX50", 7_200, 216, 48, 560),
        _v5("XC5VLX85", 12_960, 432, 48, 560),
        _v5("XC5VLX110", 17_280, 512, 64, 800),
        _v5("XC5VLX110T", 17_280, 664, 64, 680, macs=4),
        _v5("XC5VLX155", 24_320, 768, 128, 800),
        _v5("XC5VLX155T", 24_320, 936, 128, 680, macs=4),
        _v5("XC5VLX220", 34_560, 768, 128, 800),
        _v5("XC5VLX220T", 34_560, 936, 128, 680, macs=4),
        _v5("XC5VLX330", 51_840, 1_152, 192, 1_200),
        _v5("XC5VLX330T", 51_840, 1_458, 192, 960, macs=4),
        # --- Virtex-6 (the case study's Node0 device) ---------------------
        _v6("XC6VLX240T", 37_680, 1_872, 768, 720, macs=4),
        _v6("XC6VLX365T", 56_880, 1_872, 576, 720, macs=4),
        _v6("XC6VLX550T", 85_920, 2_844, 864, 1_200, macs=4),
        # --- Small parts for soft-core tests ------------------------------
        FPGADevice(
            model="XC3S1000",
            family="spartan-3",
            logic_cells=17_280,
            slices=7_680,
            luts=15_360,
            bram_kb=54,
            dsp_slices=24,
            speed_grade=SpeedGrade.GRADE_1,
            base_frequency_mhz=280.0,
            reconfig_bandwidth_mbps=50.0,
            iobs=391,
            supports_partial_reconfig=False,
        ),
        FPGADevice(
            model="XC6SLX45",
            family="spartan-6",
            logic_cells=43_661,
            slices=6_822,
            luts=27_288,
            bram_kb=261,
            dsp_slices=58,
            speed_grade=SpeedGrade.GRADE_2,
            base_frequency_mhz=375.0,
            reconfig_bandwidth_mbps=100.0,
            iobs=358,
            supports_partial_reconfig=False,
        ),
    ]
}


def device_by_model(model: str) -> FPGADevice:
    """Look up a device by exact part number.

    Raises :class:`KeyError` with the available models listed, so a typo
    in an ExecReq fails loudly.
    """
    try:
        return DEVICE_CATALOG[model]
    except KeyError:
        available = ", ".join(sorted(DEVICE_CATALOG))
        raise KeyError(f"unknown device {model!r}; catalog has: {available}") from None


def devices_by_family(family: str) -> list[FPGADevice]:
    """All catalog devices of *family*, smallest first."""
    return sorted(
        (d for d in DEVICE_CATALOG.values() if d.family == family),
        key=lambda d: d.slices,
    )


def devices_with_min_slices(min_slices: int, family: str | None = None) -> list[FPGADevice]:
    """Catalog devices offering at least *min_slices*, smallest first.

    This is the query behind the case study's Task1/Task2 placement:
    "Virtex-5 type devices with more than 24,000 slices".
    """
    pool = DEVICE_CATALOG.values() if family is None else devices_by_family(family)
    return sorted(
        (d for d in pool if d.slices >= min_slices),
        key=lambda d: d.slices,
    )
