"""Slice-granularity fabric allocation (the fixed-region alternative).

The paper's node state tracks "the current available reconfigurable
area" (Section IV-A).  The :class:`~repro.hardware.fabric.Fabric` model
realizes that with *fixed* partial-reconfiguration regions -- the way
ref [21] models DReAMSim nodes.  Real devices also support
column/frame-granular placement, where circuits occupy arbitrary
contiguous slice spans; the cost is **fragmentation**: after a few
allocate/release cycles the free area splinters and a circuit that
*would* fit in total free slices finds no contiguous span.

:class:`FlexibleFabric` implements that model: first-fit/best-fit
contiguous allocation, external-fragmentation measurement, and a
compaction pass (the defragmentation a relocation-capable runtime would
perform).  ``bench_fabric_allocation`` compares it against fixed
regions under random traffic -- the design-choice ablation DESIGN.md
calls out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.hardware.fpga import FPGADevice

_span_ids = itertools.count(1)


class AllocationError(RuntimeError):
    """No contiguous span satisfies the request."""


@dataclass
class Span:
    """A contiguous slice allocation [start, start + slices).

    Mutable on purpose: :meth:`FlexibleFabric.compact` *relocates*
    spans in place, so handles held by callers stay valid across
    defragmentation (the same way a relocation-capable runtime keeps
    module identities stable while moving their frames).
    """

    span_id: int
    start: int
    slices: int
    implements: str = ""

    def __post_init__(self) -> None:
        if self.start < 0 or self.slices <= 0:
            raise ValueError("span must have non-negative start and positive size")

    @property
    def end(self) -> int:
        return self.start + self.slices


class FlexibleFabric:
    """Contiguous slice allocator over one device's area.

    Invariants (property-tested):

    * allocated spans never overlap and never exceed the device;
    * ``free_slices + allocated_slices == device.slices``;
    * after :meth:`compact`, free space is one contiguous tail span.
    """

    def __init__(self, device: FPGADevice, *, policy: str = "first-fit"):
        if policy not in ("first-fit", "best-fit"):
            raise ValueError(f"unknown policy {policy!r}; use first-fit or best-fit")
        self.device = device
        self.policy = policy
        self.spans: list[Span] = []  # kept sorted by start
        self.relocations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_slices(self) -> int:
        return self.device.slices

    @property
    def allocated_slices(self) -> int:
        return sum(s.slices for s in self.spans)

    @property
    def free_slices(self) -> int:
        return self.total_slices - self.allocated_slices

    def holes(self) -> list[tuple[int, int]]:
        """Free gaps as (start, size), in address order."""
        gaps: list[tuple[int, int]] = []
        cursor = 0
        for span in self.spans:
            if span.start > cursor:
                gaps.append((cursor, span.start - cursor))
            cursor = span.end
        if cursor < self.total_slices:
            gaps.append((cursor, self.total_slices - cursor))
        return gaps

    def largest_hole(self) -> int:
        return max((size for _, size in self.holes()), default=0)

    def external_fragmentation(self) -> float:
        """1 - largest_hole / free -- 0 when free space is contiguous,
        approaching 1 as it splinters."""
        free = self.free_slices
        if free == 0:
            return 0.0
        return 1.0 - self.largest_hole() / free

    def can_allocate(self, slices: int) -> bool:
        return self.largest_hole() >= slices > 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, slices: int, *, implements: str = "") -> Span:
        """Place a circuit of *slices* contiguous slices.

        Raises :class:`AllocationError` when no hole fits -- even if the
        total free area would suffice (that is fragmentation).
        """
        if slices <= 0:
            raise ValueError("allocation size must be positive")
        if slices > self.total_slices:
            raise AllocationError(
                f"{slices} slices exceed the device ({self.total_slices})"
            )
        fitting = [(start, size) for start, size in self.holes() if size >= slices]
        if not fitting:
            raise AllocationError(
                f"no contiguous hole of {slices} slices "
                f"(free {self.free_slices}, largest hole {self.largest_hole()})"
            )
        if self.policy == "best-fit":
            start, _ = min(fitting, key=lambda h: h[1])
        else:
            start, _ = fitting[0]
        span = Span(span_id=next(_span_ids), start=start, slices=slices, implements=implements)
        self.spans.append(span)
        self.spans.sort(key=lambda s: s.start)
        return span

    def release(self, span: Span) -> None:
        if span not in self.spans:
            raise AllocationError(f"span {span.span_id} is not allocated here")
        self.spans.remove(span)

    def find_resident(self, implements: str) -> Span | None:
        for span in self.spans:
            if span.implements == implements:
                return span
        return None

    # ------------------------------------------------------------------
    # Defragmentation
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Slide every span to the lowest address (module relocation).

        Returns the number of spans moved.  After compaction the free
        area is one contiguous tail, so any request up to
        ``free_slices`` succeeds.  Each move counts as a relocation
        (a real runtime pays a reconfiguration per moved module --
        costed by :meth:`compaction_time_s`).
        """
        moved = 0
        cursor = 0
        for span in self.spans:
            if span.start != cursor:
                span.start = cursor
                moved += 1
            cursor = span.end
        self.relocations += moved
        return moved

    def compaction_time_s(self) -> float:
        """Reconfiguration time a compaction pass would cost: each
        mis-placed span is rewritten through the configuration port."""
        cursor = 0
        seconds = 0.0
        for span in self.spans:
            if span.start != cursor:
                seconds += self.device.reconfiguration_time_s(span.slices)
            cursor = span.end
        return seconds
