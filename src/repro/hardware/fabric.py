"""Reconfigurable fabric: area accounting and partial reconfiguration.

The paper's node state "can provide the current available reconfigurable
area or maintain the information of current configuration(s) on an RPE"
(Section IV-A), and reference [21] adds *partial reconfiguration* to the
DReAMSim nodes.  :class:`Fabric` is that run-time state: it divides a
device's slice area into partial-reconfiguration regions, places
:class:`Configuration` objects into them, and conserves area exactly
(a property the test suite checks with hypothesis).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.hardware.bitstream import Bitstream
from repro.hardware.fpga import FPGADevice

_config_ids = itertools.count(1)


class RegionState(enum.Enum):
    """Lifecycle of a partial-reconfiguration region."""

    FREE = "free"
    CONFIGURING = "configuring"
    CONFIGURED = "configured"
    BUSY = "busy"  # configured and currently executing a task


@dataclass
class Configuration:
    """A circuit currently resident in a fabric region.

    ``implements`` is matched against incoming tasks for configuration
    reuse: if the required function is already resident, the scheduler
    skips reconfiguration entirely (DReAMSim's configuration-reuse
    optimization, ablated in ``bench_dreamsim_reconfig``).
    """

    config_id: int
    bitstream: Bitstream
    implements: str

    @classmethod
    def from_bitstream(cls, bitstream: Bitstream) -> "Configuration":
        return cls(
            config_id=next(_config_ids),
            bitstream=bitstream,
            implements=bitstream.implements,
        )


@dataclass
class Region:
    """One partial-reconfiguration region of a fabric."""

    region_id: int
    slices: int
    state: RegionState = RegionState.FREE
    configuration: Configuration | None = None

    def __post_init__(self) -> None:
        if self.slices <= 0:
            raise ValueError("region must have positive slice area")

    @property
    def is_available(self) -> bool:
        """Free, or configured-but-idle (reusable or evictable)."""
        return self.state in (RegionState.FREE, RegionState.CONFIGURED)


class FabricError(RuntimeError):
    """Raised on illegal fabric transitions (double-free, overfill...)."""


class Fabric:
    """Run-time state of one RPE's reconfigurable area.

    A fabric is created from an :class:`FPGADevice` with a chosen region
    partition.  Devices without partial-reconfiguration support get a
    single region spanning the whole device, and any reconfiguration
    replaces everything.

    Invariants maintained (and property-tested):

    * ``sum(region.slices) == device.slices`` (area conservation);
    * a region holds at most one configuration;
    * a BUSY region can never be reconfigured or released.
    """

    def __init__(self, device: FPGADevice, regions: list[Region]):
        if not regions:
            raise ValueError("fabric needs at least one region")
        total = sum(r.slices for r in regions)
        if total != device.slices:
            raise ValueError(
                f"regions cover {total} slices but device has {device.slices}"
            )
        if len(regions) > 1 and not device.supports_partial_reconfig:
            raise ValueError(
                f"{device.model} does not support partial reconfiguration; "
                "use a single region"
            )
        self.device = device
        self.regions: list[Region] = regions

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_device(cls, device: FPGADevice, regions: int = 1) -> "Fabric":
        """Partition *device* into ``regions`` equal(ish) regions."""
        if regions <= 0:
            raise ValueError("region count must be positive")
        base, extra = divmod(device.slices, regions)
        if base == 0:
            raise ValueError(f"cannot split {device.slices} slices into {regions} regions")
        region_list = [
            Region(region_id=i, slices=base + (1 if i < extra else 0))
            for i in range(regions)
        ]
        return cls(device, region_list)

    # ------------------------------------------------------------------
    # Introspection (feeds the Node *state* attribute of Eq. 1)
    # ------------------------------------------------------------------
    @property
    def total_slices(self) -> int:
        return self.device.slices

    @property
    def available_slices(self) -> int:
        """Slices in regions that are free or hold an idle configuration."""
        return sum(r.slices for r in self.regions if r.is_available)

    @property
    def free_slices(self) -> int:
        """Slices in completely unconfigured regions."""
        return sum(r.slices for r in self.regions if r.state is RegionState.FREE)

    def resident_configurations(self) -> list[Configuration]:
        """All configurations currently on the fabric (Eq. 1 state)."""
        return [r.configuration for r in self.regions if r.configuration is not None]

    def find_resident(self, implements: str) -> Region | None:
        """Idle region already configured with *implements*, if any."""
        for region in self.regions:
            if (
                region.state is RegionState.CONFIGURED
                and region.configuration is not None
                and region.configuration.implements == implements
            ):
                return region
        return None

    def find_placeable(self, required_slices: int) -> Region | None:
        """Smallest available region with at least *required_slices*.

        Best-fit keeps large regions free for large configurations; at
        equal size, FREE regions are preferred over evicting an idle
        resident configuration (which a later task might reuse).
        """
        candidates = [
            r for r in self.regions if r.is_available and r.slices >= required_slices
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (r.slices, 0 if r.state is RegionState.FREE else 1),
        )

    def can_place(self, required_slices: int) -> bool:
        return self.find_placeable(required_slices) is not None

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def begin_reconfiguration(self, region: Region, bitstream: Bitstream) -> Configuration:
        """Start loading *bitstream* into *region*.

        Returns the new :class:`Configuration`; the region enters
        CONFIGURING until :meth:`finish_reconfiguration`.
        """
        self._check_owned(region)
        if not bitstream.targets(self.device):
            raise FabricError(
                f"bitstream targets {bitstream.target_model} "
                f"but fabric device is {self.device.model}"
            )
        if bitstream.required_slices > region.slices:
            raise FabricError(
                f"bitstream needs {bitstream.required_slices} slices; "
                f"region {region.region_id} has {region.slices}"
            )
        if not region.is_available:
            raise FabricError(
                f"region {region.region_id} is {region.state.value}; cannot reconfigure"
            )
        configuration = Configuration.from_bitstream(bitstream)
        region.state = RegionState.CONFIGURING
        region.configuration = configuration
        return configuration

    def finish_reconfiguration(self, region: Region) -> None:
        self._check_owned(region)
        if region.state is not RegionState.CONFIGURING:
            raise FabricError(
                f"region {region.region_id} is {region.state.value}, not configuring"
            )
        region.state = RegionState.CONFIGURED

    def reconfiguration_time_s(self, bitstream: Bitstream, *, partial: bool = True) -> float:
        """Seconds to load *bitstream* through the configuration port.

        Full-device reconfiguration (``partial=False``, or a device
        without PR support) always pays for the whole device.
        """
        if partial and self.device.supports_partial_reconfig:
            return self.device.reconfiguration_time_s(bitstream.required_slices)
        return self.device.reconfiguration_time_s(None)

    def occupy(self, region: Region) -> None:
        """Mark a configured region as executing a task."""
        self._check_owned(region)
        if region.state is not RegionState.CONFIGURED:
            raise FabricError(
                f"region {region.region_id} is {region.state.value}; cannot occupy"
            )
        region.state = RegionState.BUSY

    def vacate(self, region: Region) -> None:
        """Task finished; the configuration stays resident for reuse."""
        self._check_owned(region)
        if region.state is not RegionState.BUSY:
            raise FabricError(
                f"region {region.region_id} is {region.state.value}; cannot vacate"
            )
        region.state = RegionState.CONFIGURED

    def clear(self, region: Region) -> None:
        """Evict an idle configuration, returning the region to FREE."""
        self._check_owned(region)
        if region.state is RegionState.BUSY:
            raise FabricError(f"region {region.region_id} is busy; cannot clear")
        region.state = RegionState.FREE
        region.configuration = None

    def _check_owned(self, region: Region) -> None:
        if region not in self.regions:
            raise FabricError(f"region {region.region_id} does not belong to this fabric")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = ", ".join(f"R{r.region_id}:{r.state.value}" for r in self.regions)
        return f"Fabric({self.device.model}, [{states}])"
