"""Hardware design artifacts: HDL designs, synthesis results, bitstreams.

The abstraction levels of Figure 2 differ in which artifact the user
hands to the grid:

* **User-defined hardware configuration** (Section III-B2): the user
  submits a *generic HDL design* (VHDL/Verilog); the service provider
  runs CAD tools to produce a device-specific bitstream.
  :class:`HDLDesign` + :class:`SynthesisResult` model that flow.
* **Device-specific hardware** (Section III-B3): the user submits a
  ready-made :class:`Bitstream` targeting one exact device model; the
  provider needs no CAD tools, only the matching device.

Bitstreams are also what the scheduler ships over the network before a
reconfiguration, so they carry a size for the transfer-delay model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.hardware.fpga import FPGADevice

_bitstream_ids = itertools.count(1)


@dataclass(frozen=True)
class HDLDesign:
    """A hardware design in a generic HDL, as submitted at the
    user-defined-hardware abstraction level.

    Parameters
    ----------
    name:
        Design name, e.g. ``"pairalign_accel"``.
    language:
        ``"VHDL"`` or ``"Verilog"`` (Section III-B2 names both).
    source_lines:
        Size of the design entry; the synthesis-time model scales with it.
    estimated_slices, estimated_bram_kb, estimated_dsp:
        Resource estimates, typically produced by the Quipu predictor
        (:mod:`repro.profiling.quipu`) from the software kernel the
        design accelerates.
    implements:
        Name of the task function the design accelerates; used to check
        that a resident configuration can serve a task without
        reconfiguring (configuration reuse).
    """

    name: str
    language: str
    source_lines: int
    estimated_slices: int
    estimated_bram_kb: int = 0
    estimated_dsp: int = 0
    implements: str = ""

    def __post_init__(self) -> None:
        if self.language not in ("VHDL", "Verilog"):
            raise ValueError(f"unsupported HDL {self.language!r}; use VHDL or Verilog")
        if self.estimated_slices <= 0:
            raise ValueError("estimated slices must be positive")
        if self.source_lines <= 0:
            raise ValueError("source size must be positive")


@dataclass(frozen=True)
class Bitstream:
    """A device-specific configuration bitstream.

    Parameters
    ----------
    bitstream_id:
        Unique identifier.
    target_model:
        Exact device model this bitstream configures (bitstreams are
        never portable across models).
    size_bytes:
        Bitstream size; drives both network-transfer and
        configuration-port delays.
    required_slices:
        Fabric area the configured circuit occupies (for partial
        reconfiguration placement).
    implements:
        Function the configured circuit computes.
    speedup_vs_gpp:
        Accelerator speedup relative to a 1000-MIPS reference GPP;
        used by the simulator to derive hardware execution times.
    """

    bitstream_id: int
    target_model: str
    size_bytes: int
    required_slices: int
    implements: str = ""
    speedup_vs_gpp: float = 10.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("bitstream size must be positive")
        if self.required_slices <= 0:
            raise ValueError("required slices must be positive")
        if self.speedup_vs_gpp <= 0:
            raise ValueError("speedup must be positive")

    def targets(self, device: FPGADevice) -> bool:
        """Whether this bitstream can configure *device*."""
        return device.model == self.target_model


@dataclass(frozen=True)
class SynthesisResult:
    """Output of the provider-side CAD flow (Section III-B2's "mechanism
    and tools to generate device specific bitstreams for the user").

    Produced by :class:`repro.grid.virtualizer.SynthesisService`.
    """

    design: HDLDesign
    bitstream: Bitstream
    synthesis_time_s: float
    achieved_frequency_mhz: float

    def __post_init__(self) -> None:
        if self.synthesis_time_s < 0:
            raise ValueError("synthesis time must be non-negative")


def synthesize(
    design: HDLDesign,
    device: FPGADevice,
    *,
    speedup_vs_gpp: float = 10.0,
) -> SynthesisResult:
    """Run the modeled CAD flow: map *design* onto *device*.

    Raises
    ------
    ValueError
        If the design does not fit the device (slices, BRAM, or DSP).

    Notes
    -----
    Synthesis time is modeled as super-linear in design size, matching
    the observation that place-and-route dominates and scales poorly;
    achieved frequency degrades as the device fills up.
    """
    if design.estimated_slices > device.slices:
        raise ValueError(
            f"design {design.name!r} needs {design.estimated_slices} slices "
            f"but {device.model} has only {device.slices}"
        )
    if design.estimated_bram_kb > device.bram_kb:
        raise ValueError(
            f"design {design.name!r} needs {design.estimated_bram_kb} KB BRAM "
            f"but {device.model} has only {device.bram_kb}"
        )
    if design.estimated_dsp > device.dsp_slices:
        raise ValueError(
            f"design {design.name!r} needs {design.estimated_dsp} DSP slices "
            f"but {device.model} has only {device.dsp_slices}"
        )

    utilization = design.estimated_slices / device.slices
    # Place-and-route slows down sharply above ~70 % utilization.
    congestion = 1.0 + max(0.0, utilization - 0.7) * 8.0
    synthesis_time_s = 30.0 + 0.8 * design.source_lines * congestion
    achieved_frequency_mhz = device.max_frequency_mhz * (0.5 - 0.2 * utilization)

    bitstream = Bitstream(
        bitstream_id=next(_bitstream_ids),
        target_model=device.model,
        size_bytes=device.bitstream_size_bytes(design.estimated_slices),
        required_slices=design.estimated_slices,
        implements=design.implements or design.name,
        speedup_vs_gpp=speedup_vs_gpp,
    )
    return SynthesisResult(
        design=design,
        bitstream=bitstream,
        synthesis_time_s=synthesis_time_s,
        achieved_frequency_mhz=achieved_frequency_mhz,
    )
