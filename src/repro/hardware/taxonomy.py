"""Figure 1: taxonomy of enhanced processing elements.

Figure 1 organizes the processing elements a polymorphic grid may offer:

.. code-block:: text

    Enhanced processing elements
    |- General-purpose processors (GPPs)
    |- Graphics processing units (GPUs)
    '- Reconfigurable processing elements (RPEs)
       |- Pre-determined hardware configuration
       |  '- soft-core processors (e.g. rho-VEX VLIW)     [Sec III-A, III-B1]
       |- User-defined hardware configuration
       |  '- generic-HDL accelerators (e.g. OpenCores IP) [Sec III-B2]
       '- Device-specific hardware
          '- user bitstreams for one exact device          [Sec III-B3]

:func:`classify` places any spec object from :mod:`repro.hardware` into
this tree, and :func:`taxonomy_tree` materializes the tree itself so the
Figure 1 benchmark can regenerate and print it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.fpga import FPGADevice
from repro.hardware.gpp import GPPSpec
from repro.hardware.gpu import GPUSpec
from repro.hardware.softcore import SoftcoreSpec


class PEClass(enum.Enum):
    """Top-level processing-element classes of Figure 1."""

    GPP = "GPP"
    GPU = "GPU"
    RPE = "RPE"
    SOFTCORE = "SOFTCORE"  # an RPE configured as a soft-core processor

    @classmethod
    def from_string(cls, value: str) -> "PEClass":
        try:
            return cls(value.upper())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown PE class {value!r}; expected one of: {valid}") from None


@dataclass(frozen=True)
class TaxonomyNode:
    """One node of the Figure 1 taxonomy tree."""

    label: str
    section: str = ""
    children: tuple["TaxonomyNode", ...] = ()

    def walk(self):
        """Yield ``(depth, node)`` pairs in pre-order."""
        stack: list[tuple[int, TaxonomyNode]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def find(self, label: str) -> "TaxonomyNode | None":
        for _, node in self.walk():
            if node.label == label:
                return node
        return None


def taxonomy_tree() -> TaxonomyNode:
    """The Figure 1 taxonomy, as a tree of :class:`TaxonomyNode`."""
    return TaxonomyNode(
        label="Enhanced processing elements",
        children=(
            TaxonomyNode(label="General-purpose processors", section="III-A"),
            TaxonomyNode(label="Graphics processing units", section="III"),
            TaxonomyNode(
                label="Reconfigurable processing elements",
                children=(
                    TaxonomyNode(
                        label="Pre-determined hardware configuration",
                        section="III-B1",
                        children=(
                            TaxonomyNode(label="Soft-core processors (rho-VEX VLIW)"),
                        ),
                    ),
                    TaxonomyNode(
                        label="User-defined hardware configuration",
                        section="III-B2",
                        children=(
                            TaxonomyNode(label="Generic-HDL accelerators (OpenCores IP)"),
                        ),
                    ),
                    TaxonomyNode(
                        label="Device-specific hardware",
                        section="III-B3",
                        children=(TaxonomyNode(label="User bitstreams for one device"),),
                    ),
                ),
            ),
        ),
    )


def classify(spec: object) -> PEClass:
    """Classify any hardware spec into its Figure 1 top-level class."""
    if isinstance(spec, GPPSpec):
        return PEClass.GPP
    if isinstance(spec, GPUSpec):
        return PEClass.GPU
    if isinstance(spec, SoftcoreSpec):
        return PEClass.SOFTCORE
    if isinstance(spec, FPGADevice):
        return PEClass.RPE
    raise TypeError(f"cannot classify {type(spec).__name__} into the Figure 1 taxonomy")
