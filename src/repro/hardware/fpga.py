"""FPGA device model.

Table I of the paper enumerates the parameters that characterize an FPGA
as a reconfigurable processing element (RPE):

======================  ======================================================
Parameter               Description (quoting Table I)
======================  ======================================================
Logic cells / Slices /  "Designed to implement user-defined combinatorial and
LUTs / Gates            sequential functions."
BRAM / Memory blocks    "Additional memory blocks available in terms of
                        distributed RAM."
DSP slices              "Pre-configured multiplier, adder, and accumulator
                        required for high-speed filtering."
Speed grades            "Maximum frequency at which a device can operate."
Reconfiguration         "Speed (in MB/s) to reconfigure a device."
bandwidth
IOBs                    "Support different I/O standards."
Ethernet MAC            "Embedded MAC for Ethernet applications."
======================  ======================================================

:class:`FPGADevice` captures exactly this parameter set and derives the
quantities the rest of the framework needs: a capability descriptor for
matchmaking (Section IV-A), bitstream-size and reconfiguration-time
estimates for the scheduler's cost model (Section V), and a
:class:`~repro.hardware.fabric.Fabric` factory for partial
reconfiguration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SpeedGrade(enum.IntEnum):
    """Xilinx-style speed grade; larger numbers denote faster silicon.

    The grade scales the device's maximum operating frequency: the
    framework models grade ``-N`` as ``base_freq * (1 + 0.1 * (N - 1))``.
    """

    GRADE_1 = 1
    GRADE_2 = 2
    GRADE_3 = 3

    @property
    def frequency_scale(self) -> float:
        """Multiplier applied to the family's base frequency."""
        return 1.0 + 0.1 * (int(self) - 1)


#: Approximate configuration-bits-per-slice for the modeled families.
#: Derived from public bitstream sizes (e.g. a Virtex-5 LX110T bitstream
#: is ~31 Mb over ~17,280 slices).  The exact constant does not matter to
#: the framework; only that bitstream size grows linearly with area.
_CONFIG_BITS_PER_SLICE: dict[str, int] = {
    "virtex-4": 1400,
    "virtex-5": 1800,
    "virtex-6": 1900,
    "spartan-3": 1100,
    "spartan-6": 1300,
    "stratix-iv": 1700,
    "generic": 1500,
}


@dataclass(frozen=True)
class FPGADevice:
    """An FPGA device characterized by the Table I parameter set.

    Instances are immutable value objects; the mutable run-time aspect of
    an RPE (what is configured where) lives in
    :class:`repro.hardware.fabric.Fabric`.

    Parameters
    ----------
    model:
        Vendor part number, e.g. ``"XC5VLX50"`` or ``"XC6VLX365T"``.
    family:
        Device family in lower case, e.g. ``"virtex-5"``.
    logic_cells, slices, luts:
        Logic resources.  ``slices`` is the area unit used throughout the
        paper's case study (Quipu predicts slice counts).
    bram_kb:
        Total block-RAM capacity in kilobytes.
    dsp_slices:
        Number of DSP (multiply/accumulate) slices.
    speed_grade:
        :class:`SpeedGrade` of this part.
    base_frequency_mhz:
        Family base frequency before the speed-grade scaling.
    reconfig_bandwidth_mbps:
        Configuration-port bandwidth in MB/s (Table I's "reconfiguration
        bandwidth"); drives reconfiguration-delay estimates.
    iobs:
        Number of I/O blocks.
    ethernet_macs:
        Number of embedded Ethernet MACs.
    supports_partial_reconfig:
        Whether the device can reconfigure a sub-region while the rest of
        the fabric keeps running (refs [21] of the paper).
    """

    model: str
    family: str
    logic_cells: int
    slices: int
    luts: int
    bram_kb: int
    dsp_slices: int
    speed_grade: SpeedGrade = SpeedGrade.GRADE_1
    base_frequency_mhz: float = 450.0
    reconfig_bandwidth_mbps: float = 100.0
    iobs: int = 400
    ethernet_macs: int = 0
    supports_partial_reconfig: bool = True

    def __post_init__(self) -> None:
        if self.slices <= 0:
            raise ValueError(f"device {self.model!r} must have positive slices")
        if self.luts <= 0:
            raise ValueError(f"device {self.model!r} must have positive LUTs")
        if self.reconfig_bandwidth_mbps <= 0:
            raise ValueError("reconfiguration bandwidth must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def max_frequency_mhz(self) -> float:
        """Maximum operating frequency after speed-grade scaling."""
        return self.base_frequency_mhz * self.speed_grade.frequency_scale

    @property
    def config_bits_per_slice(self) -> int:
        """Configuration-memory bits required per slice for this family."""
        return _CONFIG_BITS_PER_SLICE.get(self.family, _CONFIG_BITS_PER_SLICE["generic"])

    def bitstream_size_bytes(self, slices: int | None = None) -> int:
        """Size in bytes of a (partial) bitstream covering *slices* slices.

        With ``slices=None`` the full-device bitstream size is returned.
        Partial bitstreams scale linearly with the reconfigured area,
        which is the standard first-order model for frame-addressable
        configuration memories.
        """
        area = self.slices if slices is None else slices
        if area < 0:
            raise ValueError("slice count must be non-negative")
        area = min(area, self.slices)
        return (area * self.config_bits_per_slice) // 8

    def reconfiguration_time_s(self, slices: int | None = None) -> float:
        """Seconds to load a (partial) bitstream through the config port."""
        size_mb = self.bitstream_size_bytes(slices) / 1e6
        return size_mb / self.reconfig_bandwidth_mbps

    # ------------------------------------------------------------------
    # Framework integration
    # ------------------------------------------------------------------
    def capabilities(self) -> dict[str, object]:
        """Capability descriptor used by ExecReq matching (Section IV).

        Keys follow Table I naming, lower-snake-cased.
        """
        return {
            "pe_class": "RPE",
            "device_model": self.model,
            "device_family": self.family,
            "logic_cells": self.logic_cells,
            "slices": self.slices,
            "luts": self.luts,
            "bram_kb": self.bram_kb,
            "dsp_slices": self.dsp_slices,
            "speed_grade": int(self.speed_grade),
            "max_frequency_mhz": self.max_frequency_mhz,
            "reconfig_bandwidth_mbps": self.reconfig_bandwidth_mbps,
            "iobs": self.iobs,
            "ethernet_macs": self.ethernet_macs,
            "partial_reconfig": self.supports_partial_reconfig,
        }

    def make_fabric(self, regions: int = 1):
        """Create a :class:`~repro.hardware.fabric.Fabric` for this device.

        ``regions`` partitions the slice area into equal
        partial-reconfiguration regions; devices without partial
        reconfiguration support only accept ``regions=1``.
        """
        from repro.hardware.fabric import Fabric

        return Fabric.for_device(self, regions=regions)
