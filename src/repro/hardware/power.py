"""Power models for the Table I processing-element classes.

The paper's first stated objective is "*more performance can be
achieved by utilizing reconfigurable hardware, at lower power*"
(Section I), and its motivation cites FPGAs' "power efficiency" and
"reduced energy consumption".  This module gives every PE class a
first-order power model so the claim can be *measured* on simulated
workloads (see :mod:`repro.sim.energy` and
``benchmarks/bench_energy_efficiency.py``).

Models (all linear, coefficients from public-era datapoints):

* **GPP** -- ``idle + (peak - idle) * load``.  Peak scales with
  aggregate MIPS at ~4 mW/MIPS (a 2006 Xeon: ~80 W for ~20k MIPS);
  idle is 40 % of peak (pre-deep-sleep server silicon).
* **FPGA** -- static leakage proportional to device area
  (~55 uW/slice: a Virtex-5 LX330 leaks ~3 W) plus dynamic power
  proportional to the *active* slices (~60 uW/slice at design-typical
  toggle rates).  An idle configured region burns only clock-tree
  residue, modeled at 10 % of its dynamic power.
* **Soft core** -- the dynamic power of its occupied slices while
  running (it is just a configuration).
* **GPU** -- idle floor plus per-shader-core active power (a Tesla
  C1060: ~190 W peak / ~70 W idle over 240 cores).

The absolute numbers matter less than the *ratios* they encode: a
hardware kernel that is 10x faster than a GPP at ~1/10 the power is
~100x more energy-efficient -- which is the magnitude the
reconfigurable-computing literature reports and the paper banks on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.fpga import FPGADevice
from repro.hardware.gpp import GPPSpec
from repro.hardware.gpu import GPUSpec
from repro.hardware.softcore import SoftcoreSpec

#: GPP coefficients.
GPP_PEAK_W_PER_MIPS = 0.004
GPP_IDLE_FRACTION = 0.4
#: FPGA coefficients.
FPGA_STATIC_W_PER_SLICE = 55e-6
FPGA_DYNAMIC_W_PER_SLICE = 60e-6
FPGA_IDLE_CONFIG_FRACTION = 0.10
#: Reconfiguration burns roughly dynamic power over the whole device
#: while the configuration port streams frames.
FPGA_RECONFIG_W_PER_SLICE = 30e-6
#: GPU coefficients.
GPU_IDLE_W = 70.0
GPU_ACTIVE_W_PER_CORE = 0.5


@dataclass(frozen=True)
class PowerDraw:
    """A PE's power at a point in time, split by origin."""

    static_w: float
    dynamic_w: float

    def __post_init__(self) -> None:
        if self.static_w < 0 or self.dynamic_w < 0:
            raise ValueError("power draws must be non-negative")

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_w


def gpp_power(spec: GPPSpec, *, load: float = 1.0) -> PowerDraw:
    """GPP power at utilization *load* in [0, 1]."""
    if not 0.0 <= load <= 1.0:
        raise ValueError("load must be in [0, 1]")
    peak = spec.aggregate_mips * GPP_PEAK_W_PER_MIPS
    idle = peak * GPP_IDLE_FRACTION
    return PowerDraw(static_w=idle, dynamic_w=(peak - idle) * load)


def fpga_static_power(device: FPGADevice) -> PowerDraw:
    """Leakage of a powered (possibly empty) device."""
    return PowerDraw(static_w=device.slices * FPGA_STATIC_W_PER_SLICE, dynamic_w=0.0)


def fpga_active_power(device: FPGADevice, active_slices: int) -> PowerDraw:
    """Device with *active_slices* toggling (a running accelerator)."""
    if active_slices < 0:
        raise ValueError("active slices must be non-negative")
    active_slices = min(active_slices, device.slices)
    return PowerDraw(
        static_w=device.slices * FPGA_STATIC_W_PER_SLICE,
        dynamic_w=active_slices * FPGA_DYNAMIC_W_PER_SLICE,
    )


def fpga_idle_configured_power(device: FPGADevice, configured_slices: int) -> PowerDraw:
    """Device with resident-but-idle configurations (clock residue)."""
    if configured_slices < 0:
        raise ValueError("configured slices must be non-negative")
    configured_slices = min(configured_slices, device.slices)
    return PowerDraw(
        static_w=device.slices * FPGA_STATIC_W_PER_SLICE,
        dynamic_w=configured_slices
        * FPGA_DYNAMIC_W_PER_SLICE
        * FPGA_IDLE_CONFIG_FRACTION,
    )


def fpga_reconfig_power(device: FPGADevice) -> PowerDraw:
    """Power while the configuration port is streaming a bitstream."""
    return PowerDraw(
        static_w=device.slices * FPGA_STATIC_W_PER_SLICE,
        dynamic_w=device.slices * FPGA_RECONFIG_W_PER_SLICE,
    )


def softcore_power(spec: SoftcoreSpec, device: FPGADevice) -> PowerDraw:
    """A running soft core: the dynamic power of its slice footprint
    on top of the host device's leakage (charged separately)."""
    return PowerDraw(
        static_w=0.0,
        dynamic_w=min(spec.required_slices(), device.slices) * FPGA_DYNAMIC_W_PER_SLICE,
    )


def gpu_power(spec: GPUSpec, *, load: float = 1.0) -> PowerDraw:
    """GPU power at utilization *load* in [0, 1]."""
    if not 0.0 <= load <= 1.0:
        raise ValueError("load must be in [0, 1]")
    return PowerDraw(
        static_w=GPU_IDLE_W,
        dynamic_w=spec.shader_cores * GPU_ACTIVE_W_PER_CORE * load,
    )


def energy_per_task_j(power: PowerDraw, exec_time_s: float) -> float:
    """Joules to run one task at *power* for *exec_time_s*."""
    if exec_time_s < 0:
        raise ValueError("execution time must be non-negative")
    return power.total_w * exec_time_s
