"""Hardware substrate: models of every processing-element class in Table I.

The paper's framework reasons over *capability descriptors* rather than
physical silicon.  This package provides parameterized models for each
processing-element class named in Figure 1 / Table I of the paper:

* :mod:`repro.hardware.fpga` -- FPGA devices (logic cells, slices, LUTs,
  BRAM, DSP slices, speed grades, reconfiguration bandwidth, IOBs,
  Ethernet MACs).
* :mod:`repro.hardware.gpp` -- general-purpose processors (CPU type,
  MIPS rating, OS, RAM, cores).
* :mod:`repro.hardware.softcore` -- soft-core VLIW processors in the
  style of the Delft rho-VEX (FU mix, issue width, memories, register
  file, pipelines, clusters) with an area/frequency cost model so they
  can be *placed onto* a modeled FPGA fabric.
* :mod:`repro.hardware.gpu` -- GPUs (shader cores, warp size, SIMD
  pipeline width, shared memory, memory frequency).
* :mod:`repro.hardware.fabric` -- the reconfigurable fabric of a device:
  area accounting, partial-reconfiguration regions, and resident
  configurations.
* :mod:`repro.hardware.bitstream` -- HDL designs, synthesis results and
  bitstreams (the artifacts users hand to the grid at the lower
  abstraction levels of Figure 2).
* :mod:`repro.hardware.catalog` -- a concrete device catalog including
  the Virtex-5 parts and the Virtex-6 XC6VLX365T named in the paper's
  case study.
* :mod:`repro.hardware.taxonomy` -- the Figure 1 taxonomy classifier.
"""

from repro.hardware.fpga import FPGADevice, SpeedGrade
from repro.hardware.gpp import GPPSpec
from repro.hardware.softcore import SoftcoreSpec, FunctionalUnitMix
from repro.hardware.gpu import GPUSpec
from repro.hardware.fabric import Fabric, Region, RegionState, Configuration
from repro.hardware.bitstream import Bitstream, HDLDesign, SynthesisResult
from repro.hardware.catalog import (
    DEVICE_CATALOG,
    device_by_model,
    devices_by_family,
    devices_with_min_slices,
)
from repro.hardware.taxonomy import PEClass, TaxonomyNode, classify, taxonomy_tree
from repro.hardware.flexfabric import AllocationError, FlexibleFabric, Span
from repro.hardware.power import PowerDraw, energy_per_task_j, fpga_active_power, fpga_static_power, gpp_power, gpu_power, softcore_power

__all__ = [
    "FPGADevice",
    "SpeedGrade",
    "GPPSpec",
    "SoftcoreSpec",
    "FunctionalUnitMix",
    "GPUSpec",
    "Fabric",
    "Region",
    "RegionState",
    "Configuration",
    "Bitstream",
    "HDLDesign",
    "SynthesisResult",
    "DEVICE_CATALOG",
    "device_by_model",
    "devices_by_family",
    "devices_with_min_slices",
    "PEClass",
    "TaxonomyNode",
    "classify",
    "taxonomy_tree",
    "AllocationError",
    "FlexibleFabric",
    "Span",
    "PowerDraw",
    "energy_per_task_j",
    "fpga_active_power",
    "fpga_static_power",
    "gpp_power",
    "gpu_power",
    "softcore_power",
]
