"""General-purpose processor (GPP) model.

Table I characterizes a GPP by: CPU type/model, MIPS rating, operating
system, RAM, and core count.  The paper's Figure 5 node specifications
use exactly these attributes, so :class:`GPPSpec` mirrors them directly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPPSpec:
    """A general-purpose processor, per Table I.

    Parameters
    ----------
    cpu_model:
        Type of CPU, e.g. ``"Xeon-E5430"`` or ``"PowerPC-440"``.
    mips:
        Million-instructions-per-second processing capability.  This is
        the throughput number the simulator uses to convert a task's
        abstract workload (in millions of instructions) into execution
        time on this GPP.
    os:
        Operating system the node runs, e.g. ``"Linux"``.
    ram_mb:
        Main-memory size in megabytes.
    cores:
        Total number of cores.
    frequency_mhz:
        Clock frequency; informational and used by the cost model.
    """

    cpu_model: str
    mips: float
    os: str = "Linux"
    ram_mb: int = 4096
    cores: int = 1
    frequency_mhz: float = 2000.0

    def __post_init__(self) -> None:
        if self.mips <= 0:
            raise ValueError("MIPS rating must be positive")
        if self.cores <= 0:
            raise ValueError("core count must be positive")
        if self.ram_mb <= 0:
            raise ValueError("RAM must be positive")

    @property
    def aggregate_mips(self) -> float:
        """Total MIPS across all cores (ideal linear scaling)."""
        return self.mips * self.cores

    def execution_time_s(self, mega_instructions: float, parallel_fraction: float = 0.0) -> float:
        """Seconds to execute *mega_instructions* on this GPP.

        ``parallel_fraction`` is the Amdahl fraction of the workload that
        can spread over the cores; the serial remainder runs on one core.
        """
        if mega_instructions < 0:
            raise ValueError("workload must be non-negative")
        if not 0.0 <= parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        serial = (1.0 - parallel_fraction) * mega_instructions / self.mips
        parallel = parallel_fraction * mega_instructions / self.aggregate_mips
        return serial + parallel

    def capabilities(self) -> dict[str, object]:
        """Capability descriptor used by ExecReq matching (Section IV)."""
        return {
            "pe_class": "GPP",
            "cpu_model": self.cpu_model,
            "mips": self.mips,
            "os": self.os,
            "ram_mb": self.ram_mb,
            "cores": self.cores,
            "frequency_mhz": self.frequency_mhz,
        }
