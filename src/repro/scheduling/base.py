"""Scheduler strategy interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.core.matching import Candidate
from repro.core.task import Task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.grid.rms import ResourceManagementSystem


class Scheduler(ABC):
    """Strategy object plugged into the RMS.

    :meth:`choose` receives only *dynamically available* candidates
    (capability matched AND currently placeable); returning ``None``
    keeps the task in the pending queue for retry at the next
    resource-release event.
    """

    name: str = "abstract"

    @abstractmethod
    def choose(
        self,
        task: Task,
        candidates: list[Candidate],
        rms: "ResourceManagementSystem",
    ) -> Candidate | None:
        """Pick a placement for *task*, or ``None`` to defer it."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
