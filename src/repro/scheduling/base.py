"""Scheduler strategy interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.core.matching import Candidate
from repro.core.task import Task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.grid.rms import ResourceManagementSystem


def filter_excluded(
    candidates: list[Candidate], exclude_nodes: "set[int] | frozenset[int] | None"
) -> list[Candidate]:
    """Drop candidates on excluded nodes (fault-aware re-placement).

    The retry policy excludes the node a task just faulted on, so the
    next attempt lands elsewhere when the grid has anywhere else to go.
    With no exclusions this is the identity, so fault-free scheduling
    is byte-for-byte unchanged.
    """
    if not exclude_nodes:
        return candidates
    return [c for c in candidates if c.node_id not in exclude_nodes]


def filter_quarantined(
    candidates: list[Candidate], health, now: float | None
) -> list[Candidate]:
    """Drop candidates on quarantined nodes (open circuit breakers).

    *health* is a :class:`repro.grid.health.HealthTracker` (or ``None``
    when the resilience layer is off) and *now* the simulated time the
    placement is planned at.  Nodes whose breaker is OPEN -- or
    HALF_OPEN with its probe quota exhausted -- never reach the
    strategy, which is the quarantine guarantee the property suite
    pins: an open breaker receives zero placements.  Without a tracker
    this is the identity, so pre-resilience scheduling is unchanged.
    """
    if health is None or now is None:
        return candidates
    blocked = health.blocked_nodes(now)
    if not blocked:
        return candidates
    return [c for c in candidates if c.node_id not in blocked]


class Scheduler(ABC):
    """Strategy object plugged into the RMS.

    :meth:`choose` receives only *dynamically available* candidates
    (capability matched AND currently placeable); returning ``None``
    keeps the task in the pending queue for retry at the next
    resource-release event.
    """

    name: str = "abstract"

    @abstractmethod
    def choose(
        self,
        task: Task,
        candidates: list[Candidate],
        rms: "ResourceManagementSystem",
    ) -> Candidate | None:
        """Pick a placement for *task*, or ``None`` to defer it."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
