"""Scheduler strategy interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.core.matching import Candidate
from repro.core.task import Task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.grid.rms import ResourceManagementSystem


def filter_excluded(
    candidates: list[Candidate], exclude_nodes: "set[int] | frozenset[int] | None"
) -> list[Candidate]:
    """Drop candidates on excluded nodes (fault-aware re-placement).

    The retry policy excludes the node a task just faulted on, so the
    next attempt lands elsewhere when the grid has anywhere else to go.
    With no exclusions this is the identity, so fault-free scheduling
    is byte-for-byte unchanged.
    """
    if not exclude_nodes:
        return candidates
    return [c for c in candidates if c.node_id not in exclude_nodes]


class Scheduler(ABC):
    """Strategy object plugged into the RMS.

    :meth:`choose` receives only *dynamically available* candidates
    (capability matched AND currently placeable); returning ``None``
    keeps the task in the pending queue for retry at the next
    resource-release event.
    """

    name: str = "abstract"

    @abstractmethod
    def choose(
        self,
        task: Task,
        candidates: list[Candidate],
        rms: "ResourceManagementSystem",
    ) -> Candidate | None:
        """Pick a placement for *task*, or ``None`` to defer it."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
