"""First-come-first-served over resources: take the first candidate."""

from __future__ import annotations

from repro.core.matching import Candidate
from repro.core.task import Task
from repro.scheduling.base import Scheduler


class FCFSScheduler(Scheduler):
    """Pick the first admissible candidate in node-registration order.

    The simplest policy in DReAMSim's strategy suite; it ignores area
    fit, reconfiguration cost, and transfer time, so it serves as the
    floor for the strategy ablation (``bench_dreamsim_strategies``).
    """

    name = "fcfs"

    def choose(self, task: Task, candidates: list[Candidate], rms) -> Candidate | None:
        return candidates[0] if candidates else None
