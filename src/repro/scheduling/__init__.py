"""Task-scheduling strategies.

Section V: "The mapping decisions are based on a particular scheduling
strategy implemented inside the scheduler in the RMS, that takes into
account various parameters, such as area slices, reconfiguration
delays, and the time required to send configuration bitstreams, the
availability and current status of the nodes."

Every strategy implements :class:`~repro.scheduling.base.Scheduler`:
given a task and its admissible placements (from
:mod:`repro.core.matching`), pick one -- or ``None`` to keep the task
queued.  Strategies provided:

* :class:`~repro.scheduling.fcfs.FCFSScheduler` -- first candidate in
  node order (first-come-first-served over resources).
* :class:`~repro.scheduling.first_fit.FirstFitScheduler` -- first
  candidate that is *dynamically* available.
* :class:`~repro.scheduling.best_fit.BestFitAreaScheduler` -- the RPE
  whose placeable region wastes the least area (and fastest GPP for
  GPP tasks).
* :class:`~repro.scheduling.random_.RandomScheduler` -- seeded uniform
  choice (baseline for ablations).
* :class:`~repro.scheduling.hybrid.HybridCostScheduler` -- the paper's
  full cost model: minimizes transfer + reconfiguration + execution
  time, exploiting configuration reuse.
* :class:`~repro.scheduling.gpp_only.GPPOnlyScheduler` -- the
  traditional-grid baseline that ignores RPEs entirely.
* :class:`~repro.scheduling.energy_aware.EnergyAwareScheduler` --
  minimizes joules per task (the paper's power-efficiency objective).
"""

from repro.scheduling.base import Scheduler, filter_excluded
from repro.scheduling.fcfs import FCFSScheduler
from repro.scheduling.first_fit import FirstFitScheduler
from repro.scheduling.best_fit import BestFitAreaScheduler
from repro.scheduling.random_ import RandomScheduler
from repro.scheduling.hybrid import HybridCostScheduler
from repro.scheduling.gpp_only import GPPOnlyScheduler
from repro.scheduling.energy_aware import EnergyAwareScheduler

ALL_STRATEGIES = {
    "fcfs": FCFSScheduler,
    "first-fit": FirstFitScheduler,
    "best-fit-area": BestFitAreaScheduler,
    "random": RandomScheduler,
    "hybrid-cost": HybridCostScheduler,
    "energy-aware": EnergyAwareScheduler,
    "gpp-only": GPPOnlyScheduler,
}

__all__ = [
    "Scheduler",
    "filter_excluded",
    "FCFSScheduler",
    "FirstFitScheduler",
    "BestFitAreaScheduler",
    "RandomScheduler",
    "HybridCostScheduler",
    "EnergyAwareScheduler",
    "GPPOnlyScheduler",
    "ALL_STRATEGIES",
]
