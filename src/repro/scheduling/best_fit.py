"""Best-fit by fabric area (and fastest-GPP for GPP-class tasks)."""

from __future__ import annotations

from repro.core.matching import Candidate, task_required_slices
from repro.core.task import Task
from repro.hardware.taxonomy import PEClass
from repro.scheduling.base import Scheduler


class BestFitAreaScheduler(Scheduler):
    """Minimize wasted fabric area ("area slices" in the paper's list of
    scheduling parameters).

    For RPE tasks: among candidates, prefer configuration reuse, then
    the candidate whose best placeable region leaves the least slack
    (``region.slices - required``).  Tight packing preserves large
    regions for large future configurations.

    For GPP-class tasks: pick the highest-MIPS processor -- area is not
    meaningful there, so "best fit" degenerates to "fastest".
    """

    name = "best-fit-area"

    def choose(self, task: Task, candidates: list[Candidate], rms) -> Candidate | None:
        if not candidates:
            return None
        reusers = [c for c in candidates if c.reuses_resident]
        if reusers:
            return reusers[0]

        required = task_required_slices(task)

        def rpe_waste(candidate: Candidate) -> float:
            rpe = rms.node(candidate.node_id).rpe(candidate.resource_id)
            region = rpe.fabric.find_placeable(max(required, 1))
            if region is None:
                return float("inf")
            return region.slices - required

        def gpp_speed(candidate: Candidate) -> float:
            node = rms.node(candidate.node_id)
            if candidate.kind is PEClass.GPP:
                return node.gpp(candidate.resource_id).spec.mips
            # Hosted soft core: use its delivered MIPS.
            rpe = node.rpe(candidate.resource_id)
            for caps in rpe.softcore_capabilities():
                if caps.get("region_id") == candidate.region_id:
                    return float(caps["mips"])  # type: ignore[arg-type]
            return 0.0

        if task.exec_req.node_type is PEClass.RPE:
            best = min(candidates, key=rpe_waste)
            return best if rpe_waste(best) != float("inf") else None
        return max(candidates, key=gpp_speed)
