"""Energy-aware scheduling: minimize joules per task.

The paper motivates RPEs with power efficiency (Section I); this
strategy operationalizes that: it prices every admissible candidate in
*joules* -- active power of the chosen PE over the estimated execution
time, plus whole-device reconfiguration energy when a bitstream load is
needed -- and picks the cheapest.  On accelerable kernels this strongly
prefers fabric (10x faster at a fraction of a Xeon's power); on plain
software tasks it prefers the most efficient GPP.

An optional ``deadline_weight`` mixes in time so the strategy does not
starve latency entirely (weight 0 = pure energy; weight 1 ~= the
hybrid cost scheduler's behaviour).
"""

from __future__ import annotations

from repro.core.matching import Candidate, task_required_slices
from repro.core.task import Task
from repro.hardware.power import (
    energy_per_task_j,
    fpga_active_power,
    fpga_reconfig_power,
    gpp_power,
    softcore_power,
)
from repro.hardware.taxonomy import PEClass
from repro.scheduling.base import Scheduler


class EnergyAwareScheduler(Scheduler):
    """Pick the candidate with the lowest estimated joules (see module
    docstring for the power accounting)."""

    name = "energy-aware"

    def __init__(self, deadline_weight: float = 0.0):
        if deadline_weight < 0:
            raise ValueError("deadline_weight must be non-negative")
        self.deadline_weight = deadline_weight

    def _candidate_energy_j(self, task: Task, candidate: Candidate, rms) -> float:
        placement = rms._price(task, candidate)
        node = rms.node(candidate.node_id)
        if candidate.kind is PEClass.GPP:
            spec = node.gpp(candidate.resource_id).spec
            return energy_per_task_j(gpp_power(spec, load=1.0), placement.exec_time_s)
        rpe = node.rpe(candidate.resource_id)
        if candidate.kind is PEClass.SOFTCORE:
            spec = task.exec_req.artifacts.softcore
            if candidate.region_id is not None:
                spec = rpe.hosted_softcores.get(candidate.region_id, spec)
            if spec is None:
                spec = rms.virtualization.provisioner.default_core
            joules = energy_per_task_j(
                softcore_power(spec, rpe.device), placement.exec_time_s
            )
        else:
            slices = task_required_slices(task) or rpe.device.slices // 4
            joules = energy_per_task_j(
                fpga_active_power(rpe.device, slices), placement.exec_time_s
            )
        joules += energy_per_task_j(
            fpga_reconfig_power(rpe.device), placement.reconfig_time_s
        )
        return joules

    def choose(self, task: Task, candidates: list[Candidate], rms) -> Candidate | None:
        best: Candidate | None = None
        best_cost = float("inf")
        for candidate in candidates:
            try:
                joules = self._candidate_energy_j(task, candidate, rms)
                seconds = rms.estimate_cost_s(task, candidate)
            except Exception:
                continue
            cost = joules + self.deadline_weight * seconds
            if cost < best_cost:
                best, best_cost = candidate, cost
        return best
