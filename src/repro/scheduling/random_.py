"""Seeded uniform-random placement (ablation baseline)."""

from __future__ import annotations

import numpy as np

from repro.core.matching import Candidate
from repro.core.task import Task
from repro.scheduling.base import Scheduler


class RandomScheduler(Scheduler):
    """Uniform choice among admissible candidates.

    Deterministic under a fixed seed so simulation runs are
    reproducible (every stochastic component in this library takes an
    explicit seed).
    """

    name = "random"

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    def choose(self, task: Task, candidates: list[Candidate], rms) -> Candidate | None:
        if not candidates:
            return None
        return candidates[int(self.rng.integers(len(candidates)))]
