"""First fit with configuration-reuse preference."""

from __future__ import annotations

from repro.core.matching import Candidate
from repro.core.task import Task
from repro.scheduling.base import Scheduler


class FirstFitScheduler(Scheduler):
    """First candidate, but prefer one whose fabric already holds the
    task's configuration (zero reconfiguration cost).

    One step above FCFS: it exploits DReAMSim's configuration reuse but
    still ignores area fit and transfer time.
    """

    name = "first-fit"

    def choose(self, task: Task, candidates: list[Candidate], rms) -> Candidate | None:
        if not candidates:
            return None
        for candidate in candidates:
            if candidate.reuses_resident:
                return candidate
        return candidates[0]
