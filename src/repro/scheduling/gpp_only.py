"""Traditional-grid baseline: refuse to use reconfigurable fabric.

Section III-A's premise is that "traditional grid systems are already
virtualized for GPPs".  This scheduler models that world: it only ever
places tasks on plain GPPs.  RPE-class tasks are never dispatched (in a
real traditional grid they could not even be expressed), and the
soft-core fallback is disabled.  Comparing it against the hybrid
scheduler quantifies the paper's central claim that grids gain from
treating RPEs as first-class resources (``bench_hybrid_vs_gpponly``).
"""

from __future__ import annotations

from repro.core.matching import Candidate
from repro.core.task import Task
from repro.hardware.taxonomy import PEClass
from repro.scheduling.base import Scheduler


class GPPOnlyScheduler(Scheduler):
    """Only ever place tasks on plain GPPs (see module docstring)."""

    name = "gpp-only"

    def choose(self, task: Task, candidates: list[Candidate], rms) -> Candidate | None:
        for candidate in candidates:
            if candidate.kind is PEClass.GPP:
                return candidate
        return None
