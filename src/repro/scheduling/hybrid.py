"""The paper's full cost-model scheduler.

Section V lists the parameters a good strategy weighs: "area slices,
reconfiguration delays, and the time required to send configuration
bitstreams, the availability and current status of the nodes".
:class:`HybridCostScheduler` asks the RMS to price every admissible
candidate -- transfer time (input data + bitstream over the modeled
network) + synthesis time + reconfiguration time + execution time --
and takes the cheapest.  Configuration reuse naturally wins whenever
it applies because it zeroes the transfer and reconfiguration terms.

A small area-pressure tiebreaker (``area_weight``) nudges the choice
toward tight region fits so large regions stay free; it is ablated in
``bench_dreamsim_strategies``.
"""

from __future__ import annotations

from repro.core.matching import Candidate, task_required_slices
from repro.core.task import Task
from repro.hardware.taxonomy import PEClass
from repro.scheduling.base import Scheduler


class HybridCostScheduler(Scheduler):
    """Minimize per-task dispatch-to-completion time (see module
    docstring for the cost decomposition)."""

    name = "hybrid-cost"

    def __init__(self, area_weight: float = 0.0):
        if area_weight < 0:
            raise ValueError("area_weight must be non-negative")
        self.area_weight = area_weight

    def choose(self, task: Task, candidates: list[Candidate], rms) -> Candidate | None:
        if not candidates:
            return None
        best: Candidate | None = None
        best_cost = float("inf")
        required = task_required_slices(task)
        for candidate in candidates:
            try:
                cost = rms.estimate_cost_s(task, candidate)
            except Exception:
                continue  # unpriceable candidate (e.g. synthesis refused)
            if self.area_weight and candidate.kind is PEClass.RPE:
                rpe = rms.node(candidate.node_id).rpe(candidate.resource_id)
                region = rpe.fabric.find_placeable(max(required, 1))
                if region is not None and rpe.fabric.total_slices:
                    waste = (region.slices - required) / rpe.fabric.total_slices
                    cost += self.area_weight * waste
            if cost < best_cost:
                best, best_cost = candidate, cost
        return best
