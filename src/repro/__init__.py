"""Virtualization of reconfigurable hardware in distributed systems.

A complete Python implementation of the framework proposed by
M. F. Nadeem, M. Nadeem and S. Wong, *On Virtualization of
Reconfigurable Hardware in Distributed Systems* (ICPP 2012), together
with every substrate the paper relies on: a DReAMSim-class grid
simulator, a from-scratch ClustalW, gprof- and Quipu-style profiling
tools, parameterized hardware models, and the Section V case study.

Package map (each subpackage's docstring has the details):

* :mod:`repro.hardware` -- Table I processing-element models, fabric
  state, device catalog, power models.
* :mod:`repro.core` -- the framework: node (Eq. 1), task (Eq. 2),
  application (Eq. 3/4), abstraction levels, matchmaking.
* :mod:`repro.grid` -- network, RMS, JSS, virtualization layer,
  ClassAd matchmaking, Figure 9 services.
* :mod:`repro.scheduling` -- scheduling strategies.
* :mod:`repro.sim` -- DReAMSim: engine, workloads, metrics, energy,
  declarative experiments.
* :mod:`repro.bioinfo` -- ClustalW (the BioBench case-study app).
* :mod:`repro.profiling` -- call-graph profiler + Quipu predictor.
* :mod:`repro.casestudy` -- Figures 5/6, Table II, the full pipeline.
* :mod:`repro.imaging` -- the streaming image-pipeline case study.

Command-line entry point: ``python -m repro`` (see :mod:`repro.cli`).
"""

__version__ = "1.0.0"
