"""Parallel, cached, deterministic execution of experiment grids.
Exposed on the CLI as ``--jobs N`` (worker processes; 1 = serial,
default = usable CPU count) and ``--cache-dir PATH`` (on-disk result
cache keyed by spec hash) on ``python -m repro simulate`` / ``sweep``.

DReAMSim sweeps (arrival-rate curves, strategy ablations, seed
replications) are embarrassingly parallel: every
:class:`~repro.sim.experiment.ExperimentSpec` is a complete, seeded
description of one run, so runs share no state and their reports are
identical whether executed serially or across worker processes.  This
module exploits that:

* :class:`ExperimentRunner` / :func:`run_many` -- execute a list of
  specs across a ``ProcessPoolExecutor``, falling back to in-process
  serial execution when worker processes are unavailable (restricted
  sandboxes, ``jobs=1``, single-spec batches).  Results always come
  back in submission order, and a failing worker re-raises its
  exception in the caller instead of hanging the batch.
* **Spec-hash result caching** -- with a ``cache_dir``, each finished
  run is stored as JSON keyed by a SHA-256 of the spec's canonical
  form; re-running the same spec is a file read, which makes iterating
  on wide sweeps cheap.
* :func:`parallel_sweep` / :func:`parallel_replicate` -- drop-in wide
  versions of :func:`~repro.sim.experiment.sweep` and
  :func:`~repro.sim.experiment.replicate`.
* :func:`parallel_map` -- the bare order-preserving process map, for
  benchmarks and examples whose scenarios are built in code rather
  than as specs.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.sim.energy import EnergyReport
from repro.sim.experiment import (
    ExperimentResult,
    ExperimentSpec,
    ReplicationSummary,
    run_experiment,
    summarize_replications,
)
from repro.sim.metrics import SimulationReport

#: Bump when the cached JSON layout changes; stale entries then miss.
#: 2: fault-injection fields on ExperimentSpec and SimulationReport.
#: 3: resilience fields (breakers/deadlines/checkpoints/speculation).
#: 4: wait/turnaround percentile fields (p50/p99 wait, p50/p95/p99 turnaround).
#: 5: ``engine`` field on ExperimentSpec (heap vs calendar queue).
#: 6: overload protection (admission/brownout spec + flash-crowd knobs
#:    on ExperimentSpec; shed/brownout fields on SimulationReport).
#: 7: control-plane fault tolerance (failover spec on ExperimentSpec;
#:    detection/failover/orphan fields on SimulationReport).
#: 8: causal run analysis / host-phase profiler (host_phase_s and
#:    host_phase_calls fields on SimulationReport).
#: 9: online SLO monitoring (slo spec on ExperimentSpec; per-tenant
#:    and SLO attainment fields on SimulationReport).
_CACHE_FORMAT = 9


def default_jobs() -> int:
    """Worker count when none is requested: the usable CPU count."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def spec_cache_key(spec: ExperimentSpec, *, audit_energy: bool = False) -> str:
    """SHA-256 over the spec's canonical JSON form (plus run options).

    Two specs hash equal iff every knob matches, so the cache can never
    serve a result produced under different parameters.
    """
    canonical = json.dumps(
        {"format": _CACHE_FORMAT, "audit_energy": audit_energy, "spec": asdict(spec)},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def _cache_load(cache_dir: Path, spec: ExperimentSpec, key: str) -> ExperimentResult | None:
    path = _cache_path(cache_dir, key)
    if not path.is_file():
        return None
    try:
        data = json.loads(path.read_text(encoding="ascii"))
        if data.get("format") != _CACHE_FORMAT:
            return None
        report = SimulationReport(**data["report"])
        energy = EnergyReport(**data["energy"]) if data.get("energy") else None
    except (ValueError, TypeError, KeyError, OSError):
        return None  # corrupt or stale entry: treat as a miss
    return ExperimentResult(spec=spec, report=report, energy=energy)


def _cache_store(cache_dir: Path, key: str, result: ExperimentResult) -> None:
    from repro.provenance import run_provenance

    payload = {
        "format": _CACHE_FORMAT,
        "spec": asdict(result.spec),
        "report": asdict(result.report),
        "energy": asdict(result.energy) if result.energy is not None else None,
        # Additive: _cache_load ignores it, so no _CACHE_FORMAT bump.
        "provenance": run_provenance(result.spec),
    }
    tmp = _cache_path(cache_dir, key).with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True), encoding="ascii")
    tmp.replace(_cache_path(cache_dir, key))


def _execute_spec(payload: tuple[ExperimentSpec, bool]) -> ExperimentResult:
    """Worker entry point; must stay module-level (picklable)."""
    spec, audit_energy = payload
    return run_experiment(spec, audit_energy=audit_energy)


def parallel_map(fn: Callable, items: Sequence, *, jobs: int | None = None) -> list:
    """Order-preserving map of *fn* over *items* across processes.

    ``fn`` and every item must be picklable.  Falls back to a plain
    serial map when ``jobs`` resolves to one, the batch is trivially
    small, or worker processes cannot be created.  A worker exception
    propagates to the caller (the batch never hangs on a failure).
    """
    items = list(items)
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    jobs = min(jobs, len(items)) if items else 1
    if jobs <= 1:
        return [fn(item) for item in items]
    try:
        pool = ProcessPoolExecutor(max_workers=jobs)
    except (ImportError, NotImplementedError, OSError, PermissionError, ValueError):
        return [fn(item) for item in items]
    with pool:
        return list(pool.map(fn, items, chunksize=1))


@dataclass
class RunnerStats:
    """What the last :meth:`ExperimentRunner.run` actually did."""

    requested: int = 0
    executed: int = 0
    cache_hits: int = 0
    jobs: int = 1
    mode: str = "serial"
    wall_time_s: float = 0.0

    def summary_line(self) -> str:
        return (
            f"{self.requested} run(s): {self.executed} executed "
            f"({self.mode}, jobs={self.jobs}), {self.cache_hits} from cache, "
            f"{self.wall_time_s:.2f} s wall"
        )


class ExperimentRunner:
    """Executes spec batches wide, with optional on-disk result caching.

    One runner holds the execution policy (worker count, cache
    location, energy auditing); :meth:`run` applies it to any batch.
    ``last_stats`` describes the most recent batch -- how many runs
    executed, how many were cache hits, and the wall-clock spent.
    """

    def __init__(
        self,
        *,
        jobs: int | None = None,
        cache_dir: str | Path | None = None,
        audit_energy: bool = False,
        progress: bool | None = None,
    ):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = default_jobs() if jobs is None else jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.audit_energy = audit_energy
        #: Live per-spec progress lines on stderr.  ``None`` = auto:
        #: on only when stderr is a TTY, so pipelines, tests and CI logs
        #: stay byte-identical unless explicitly asked (``--progress``).
        self.progress = sys.stderr.isatty() if progress is None else progress
        self.last_stats = RunnerStats()

    @staticmethod
    def _spec_label(spec: ExperimentSpec) -> str:
        return (
            f"strategy={spec.strategy} tasks={spec.tasks} seed={spec.seed}"
        )

    def _progress_line(
        self, done: int, total: int, spec: ExperimentSpec,
        result: ExperimentResult, source: str,
    ) -> None:
        if not self.progress:
            return
        report = result.report
        print(
            f"[{done}/{total}] {self._spec_label(spec)}: "
            f"wait={report.mean_wait_s:.4f}s makespan={report.makespan_s:.2f}s "
            f"done={report.completed} ({source})",
            file=sys.stderr,
            flush=True,
        )

    def run(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
        """Run every spec; results are returned in input order."""
        specs = list(specs)
        started = time.perf_counter()
        results: list[ExperimentResult | None] = [None] * len(specs)
        keys: list[str | None] = [None] * len(specs)
        misses: list[int] = []

        done = 0
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            for i, spec in enumerate(specs):
                keys[i] = spec_cache_key(spec, audit_energy=self.audit_energy)
                results[i] = _cache_load(self.cache_dir, spec, keys[i])
                if results[i] is None:
                    misses.append(i)
                else:
                    done += 1
                    self._progress_line(done, len(specs), spec, results[i], "cached")
        else:
            misses = list(range(len(specs)))

        jobs = min(self.jobs, len(misses)) if misses else 1
        mode = "parallel" if jobs > 1 else "serial"
        for i, result in self._execute_misses(specs, misses, jobs):
            results[i] = result
            if self.cache_dir is not None:
                _cache_store(self.cache_dir, keys[i], result)
            done += 1
            self._progress_line(done, len(specs), specs[i], result, "run")

        self.last_stats = RunnerStats(
            requested=len(specs),
            executed=len(misses),
            cache_hits=len(specs) - len(misses),
            jobs=jobs,
            mode=mode,
            wall_time_s=time.perf_counter() - started,
        )
        return results  # type: ignore[return-value]

    def _execute_misses(self, specs, misses, jobs):
        """Yield ``(index, result)`` for every cache miss.

        Without progress, the batch goes through :func:`parallel_map`
        (completion order = submission order, the historical behavior).
        With progress and multiple workers, futures are drained
        as-completed so the live lines reflect real completion -- the
        caller indexes results by position, so order stays immaterial.
        """
        payloads = [(specs[i], self.audit_energy) for i in misses]
        if jobs <= 1 or not self.progress:
            yield from zip(misses, parallel_map(_execute_spec, payloads, jobs=jobs))
            return
        try:
            pool = ProcessPoolExecutor(max_workers=jobs)
        except (ImportError, NotImplementedError, OSError, PermissionError,
                ValueError):
            for i, payload in zip(misses, payloads):
                yield i, _execute_spec(payload)
            return
        with pool:
            futures = {
                pool.submit(_execute_spec, payload): i
                for i, payload in zip(misses, payloads)
            }
            for future in as_completed(futures):
                yield futures[future], future.result()

    def sweep(
        self, base: ExperimentSpec, field_name: str, values: Sequence
    ) -> list[ExperimentResult]:
        """Wide version of :func:`repro.sim.experiment.sweep`."""
        return self.run([base.with_(**{field_name: value}) for value in values])

    def replicate(
        self, base: ExperimentSpec, seeds: Sequence[int]
    ) -> ReplicationSummary:
        """Wide version of :func:`repro.sim.experiment.replicate`."""
        seeds = list(seeds)
        results = self.run([base.with_(seed=s) for s in seeds])
        return summarize_replications(seeds, [r.report for r in results])


def run_many(
    specs: Sequence[ExperimentSpec],
    *,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    audit_energy: bool = False,
) -> list[ExperimentResult]:
    """One-shot :class:`ExperimentRunner` over *specs*."""
    return ExperimentRunner(
        jobs=jobs, cache_dir=cache_dir, audit_energy=audit_energy
    ).run(specs)


def parallel_sweep(
    base: ExperimentSpec,
    field_name: str,
    values: Sequence,
    *,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> list[ExperimentResult]:
    """Wide :func:`~repro.sim.experiment.sweep` (one knob, many values)."""
    return ExperimentRunner(jobs=jobs, cache_dir=cache_dir).sweep(
        base, field_name, values
    )


def parallel_replicate(
    base: ExperimentSpec,
    seeds: Sequence[int],
    *,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> ReplicationSummary:
    """Wide :func:`~repro.sim.experiment.replicate` (many seeds)."""
    return ExperimentRunner(jobs=jobs, cache_dir=cache_dir).replicate(base, seeds)
