"""Simulation metrics: per-task records, per-resource utilization,
reconfiguration statistics, and aggregate reports.

These are the observables DReAMSim exists to measure: waiting times,
turnaround, how often configuration reuse fires, how much time the grid
burns reconfiguring, and how busy each processing element is under a
given scheduling strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TaskMetrics:
    """Timeline of one task through the simulator."""

    key: object
    function: str = ""
    #: Owning tenant label ("" in single-tenant runs).
    tenant: str = ""
    pe_kind: str = ""
    node_id: int | None = None
    resource_index: int | None = None
    slices: int = 0
    arrival: float = 0.0
    dispatch: float | None = None
    start: float | None = None
    finish: float | None = None
    transfer_time: float = 0.0
    synthesis_time: float = 0.0
    reconfig_time: float = 0.0
    reused_configuration: bool = False
    discarded: bool = False
    # --- fault-injection observables (all zero in fault-free runs) ---
    failed: bool = False
    failure_reason: str | None = None
    faults: int = 0
    retries: int = 0
    fell_back_to_gpp: bool = False
    first_fault: float | None = None
    #: Setup/execution seconds thrown away by faults (work that had to
    #: be redone or was abandoned).
    wasted_time_s: float = 0.0
    #: The same waste weighted by the fabric slices it occupied.
    wasted_slice_seconds: float = 0.0
    # --- resilience observables (all zero/None when the layer is off) ---
    #: Worst deadline this task missed: None, "soft", or "hard".
    deadline_missed: str | None = None
    #: Progress checkpoints taken across all placements of this task.
    checkpoints: int = 0
    #: Execution seconds spent writing those checkpoints.
    checkpoint_overhead_s: float = 0.0
    #: Seconds of progress a checkpoint preserved across faults (work
    #: the pre-resilience simulator would have counted as wasted).
    wasted_work_saved_s: float = 0.0
    #: Checkpoint resumes re-placed on a (possibly different) node.
    migrations: int = 0
    #: A speculative replica was launched for this task.
    speculated: bool = False
    #: ... and the replica finished first.
    speculative_win: bool = False
    # --- overload-protection observables (zero when admission is off) ---
    #: Terminal rejection by the admission controller / load shedder.
    shed: bool = False
    shed_reason: str | None = None
    #: Backpressure deferrals this submission absorbed before admission.
    defers: int = 0
    #: Brownout stage 2 forced this low-priority task onto GPP.
    degraded_to_gpp: bool = False

    @property
    def wait_time(self) -> float | None:
        """Arrival to dispatch: queueing delay."""
        if self.dispatch is None:
            return None
        return self.dispatch - self.arrival

    @property
    def turnaround(self) -> float | None:
        if self.finish is None:
            return None
        return self.finish - self.arrival


@dataclass
class ResourceUsage:
    """Busy-time accumulator for one PE (or fabric region)."""

    label: str
    busy_s: float = 0.0
    tasks_executed: int = 0

    def utilization(self, horizon_s: float) -> float:
        if horizon_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / horizon_s)


@dataclass
class SimulationReport:
    """Aggregates over a finished run."""

    horizon_s: float
    completed: int
    discarded: int
    pending: int
    mean_wait_s: float
    p95_wait_s: float
    mean_turnaround_s: float
    makespan_s: float
    reconfigurations: int
    total_reconfig_time_s: float
    reuse_hits: int
    reuse_rate: float
    mean_utilization: float
    per_resource_utilization: dict[str, float]
    tasks_by_pe_kind: dict[str, int]
    # --- fault-injection / recovery aggregates (defaults keep stored
    # reports from fault-free runs loadable) ---
    failed: int = 0
    fault_events: int = 0
    retries: int = 0
    gpp_fallbacks: int = 0
    #: Fraction of node-seconds the grid's nodes were up over the run.
    availability: float = 1.0
    #: Mean time to repair: first fault to eventual completion, over
    #: tasks that recovered.
    mttr_s: float = 0.0
    #: Setup/execution seconds lost to faults (redone or abandoned).
    wasted_work_s: float = 0.0
    #: The same waste weighted by occupied fabric slices.
    wasted_slice_seconds: float = 0.0
    #: Completed tasks per second of horizon -- throughput that *only*
    #: counts work that survived the faults.
    goodput_tasks_per_s: float = 0.0
    # --- adaptive-resilience aggregates (defaults keep stored reports
    # from pre-resilience runs loadable) ---
    #: Soft / hard deadline misses counted by the watchdog.
    deadline_soft_misses: int = 0
    deadline_hard_misses: int = 0
    #: Fraction of submitted tasks that missed any deadline.
    deadline_miss_rate: float = 0.0
    #: Circuit-breaker trips (CLOSED -> OPEN episodes) across nodes.
    quarantines: int = 0
    #: Node-seconds spent quarantined (OPEN or HALF_OPEN).
    quarantine_time_s: float = 0.0
    #: Progress checkpoints taken and the execution time they cost.
    checkpoints: int = 0
    checkpoint_overhead_s: float = 0.0
    #: Fault-hit progress preserved by checkpoints instead of redone.
    wasted_work_saved_s: float = 0.0
    #: Checkpoint resumes re-placed after a fault or timeout.
    migrations: int = 0
    #: Speculative replicas: launched, won, and the loser-side waste.
    speculative_launches: int = 0
    speculative_wins: int = 0
    speculative_win_rate: float = 0.0
    speculative_wasted_s: float = 0.0
    # --- latency percentiles (defaults keep stored reports from
    # earlier runs loadable; ``p95_wait_s`` above predates these) ---
    p50_wait_s: float = 0.0
    p99_wait_s: float = 0.0
    p50_turnaround_s: float = 0.0
    p95_turnaround_s: float = 0.0
    p99_turnaround_s: float = 0.0
    # --- overload-protection aggregates (defaults keep stored reports
    # from pre-admission runs loadable) ---
    #: Submissions rejected terminally by admission / load shedding.
    shed: int = 0
    #: Backpressure deferral events (one submission may defer several
    #: times before it is finally admitted or shed).
    admission_deferrals: int = 0
    #: Matchmaking rounds vetoed by the utilization gate.
    placements_gated: int = 0
    #: Low-priority tasks brownout stage 2 forced onto GPP execution.
    brownout_degraded: int = 0
    #: Brownout stage transitions (escalations + recoveries).
    brownout_transitions: int = 0
    brownout_max_stage: int = 0
    #: Simulated seconds spent at any brownout stage > 0.
    brownout_time_s: float = 0.0
    #: Completions per second *while degraded* -- the throughput the
    #: protected system still delivered under overload.
    overload_goodput_tasks_per_s: float = 0.0
    # --- control-plane fault-tolerance aggregates (defaults keep
    # stored reports from pre-failover runs loadable) ---
    #: Primary RMS crashes / gray-failure episodes injected.
    rms_crashes: int = 0
    rms_gray_events: int = 0
    #: Warm-standby promotions that completed.
    failovers: int = 0
    #: Sim seconds the control plane could not make placement
    #: decisions (crash + gray windows, failover takeover included).
    control_plane_downtime_s: float = 0.0
    #: Confirmed failure detections and their death-to-confirm latency.
    detections: int = 0
    detection_latency_p50_s: float = 0.0
    detection_latency_p95_s: float = 0.0
    #: Suspicions that cleared (or confirms that proved wrong) -- the
    #: detector's false-positive count.
    false_suspicions: int = 0
    #: Placements whose lease lapsed while the control plane was dark.
    leases_expired: int = 0
    #: Placements orphaned by control-plane loss -- every one of them
    #: re-queued, so recovered == orphaned (the conservation invariant
    #: extends over failover).
    orphaned_tasks: int = 0
    orphans_recovered: int = 0
    # --- per-tenant aggregates (empty in single-tenant runs; defaults
    # keep stored reports loadable) ---
    #: tenant -> {completed, shed, failed, mean/p50/p95/p99 wait and
    #: turnaround}, tenants in order of first arrival.
    per_tenant: dict[str, dict[str, float]] = field(default_factory=dict)
    # --- SLO monitoring aggregates (zero/empty unless the run armed an
    # ``SLOSpec``; defaults keep stored reports loadable) ---
    #: Objectives the monitor evaluated over the run.
    slo_objectives: int = 0
    #: Breach episodes (begin/end pairs) across all objectives.
    slo_breaches: int = 0
    #: Burn-rate alerts fired and resolved (horizon-close included).
    slo_alerts_fired: int = 0
    slo_alerts_resolved: int = 0
    #: objective name -> fraction of the horizon spent in compliance.
    slo_attainment: dict[str, float] = field(default_factory=dict)
    #: objective name -> error budget left (1 = untouched, 0 = spent).
    slo_error_budget_remaining: dict[str, float] = field(default_factory=dict)
    #: objective name -> sim seconds spent in breach.
    slo_breach_seconds: dict[str, float] = field(default_factory=dict)
    #: Names of objectives that blew their error budget.
    slo_violated: list[str] = field(default_factory=list)
    # --- host-phase profile (empty unless the run was profiled with
    # sim/hostprof.py; defaults keep stored reports loadable) ---
    #: Exclusive host wall seconds per simulator phase (engine pop/push,
    #: matchmaking, dispatch, faults, telemetry, metrics, other).
    host_phase_s: dict[str, float] = field(default_factory=dict)
    host_phase_calls: dict[str, int] = field(default_factory=dict)

    def summary_lines(self) -> list[str]:
        """Human-readable report (printed by benches and examples)."""
        lines = [
            f"horizon              {self.horizon_s:10.2f} s",
            f"completed / discarded / pending   {self.completed} / {self.discarded} / {self.pending}",
            f"mean wait            {self.mean_wait_s:10.4f} s   "
            f"(p50 {self.p50_wait_s:.4f}  p95 {self.p95_wait_s:.4f}  p99 {self.p99_wait_s:.4f})",
            f"mean turnaround      {self.mean_turnaround_s:10.4f} s   "
            f"(p50 {self.p50_turnaround_s:.4f}  p95 {self.p95_turnaround_s:.4f}  "
            f"p99 {self.p99_turnaround_s:.4f})",
            f"makespan             {self.makespan_s:10.2f} s",
            f"reconfigurations     {self.reconfigurations:6d}  ({self.total_reconfig_time_s:.3f} s total)",
            f"configuration reuse  {self.reuse_hits:6d}  (rate {self.reuse_rate:.2%})",
            f"mean PE utilization  {self.mean_utilization:10.2%}",
            "tasks by PE kind     "
            + ", ".join(f"{k}: {v}" for k, v in sorted(self.tasks_by_pe_kind.items())),
        ]
        if self.fault_events or self.failed:
            lines += [
                f"faults / retries / fallbacks   {self.fault_events} / {self.retries} / {self.gpp_fallbacks}",
                f"failed tasks         {self.failed:6d}",
                f"availability         {self.availability:10.2%}",
                f"MTTR                 {self.mttr_s:10.4f} s",
                f"wasted work          {self.wasted_work_s:10.4f} s   ({self.wasted_slice_seconds:.1f} slice-s)",
                f"goodput              {self.goodput_tasks_per_s:10.4f} tasks/s",
            ]
        if (
            self.deadline_soft_misses
            or self.deadline_hard_misses
            or self.quarantines
            or self.checkpoints
            or self.speculative_launches
        ):
            lines += [
                f"deadline misses      soft {self.deadline_soft_misses} / "
                f"hard {self.deadline_hard_misses}   (miss rate {self.deadline_miss_rate:.2%})",
                f"quarantines          {self.quarantines:6d}  ({self.quarantine_time_s:.2f} node-s)",
                f"checkpoints          {self.checkpoints:6d}  "
                f"(overhead {self.checkpoint_overhead_s:.3f} s, saved {self.wasted_work_saved_s:.3f} s)",
                f"migrations           {self.migrations:6d}",
                f"speculation          {self.speculative_launches} launched / "
                f"{self.speculative_wins} won  (win rate {self.speculative_win_rate:.2%}, "
                f"wasted {self.speculative_wasted_s:.3f} s)",
            ]
        if (
            self.shed
            or self.admission_deferrals
            or self.placements_gated
            or self.brownout_transitions
        ):
            lines += [
                f"overload protection  shed {self.shed} / deferred "
                f"{self.admission_deferrals} / gated {self.placements_gated}",
                f"brownout             {self.brownout_transitions} transitions  "
                f"(max stage {self.brownout_max_stage}, "
                f"{self.brownout_time_s:.2f} s degraded, "
                f"{self.brownout_degraded} forced to GPP)",
                f"goodput (degraded)   {self.overload_goodput_tasks_per_s:10.4f} tasks/s",
            ]
        if self.rms_crashes or self.rms_gray_events or self.detections or self.orphaned_tasks:
            lines += [
                f"control plane        {self.rms_crashes} crashes / "
                f"{self.rms_gray_events} gray  "
                f"({self.control_plane_downtime_s:.2f} s dark, "
                f"{self.failovers} failovers)",
                f"detection latency    p50 {self.detection_latency_p50_s:.3f} s  "
                f"p95 {self.detection_latency_p95_s:.3f} s  "
                f"({self.detections} confirmed, "
                f"{self.false_suspicions} false suspicions)",
                f"orphans              {self.orphaned_tasks} orphaned / "
                f"{self.orphans_recovered} recovered  "
                f"({self.leases_expired} leases expired)",
            ]
        for name, row in self.per_tenant.items():
            lines.append(
                f"tenant {name:<14s}{int(row['completed'])} done / "
                f"{int(row['shed'])} shed / {int(row['failed'])} failed   "
                f"(p95 wait {row['p95_wait_s']:.4f} s, "
                f"p95 turnaround {row['p95_turnaround_s']:.4f} s)"
            )
        if self.slo_objectives:
            lines.append(
                f"SLO                  {self.slo_objectives} objectives / "
                f"{len(self.slo_violated)} violated   "
                f"({self.slo_breaches} breaches, "
                f"{self.slo_alerts_fired} alerts fired / "
                f"{self.slo_alerts_resolved} resolved)"
            )
            for name, attainment in self.slo_attainment.items():
                budget = self.slo_error_budget_remaining.get(name, 0.0)
                verdict = "VIOLATED" if name in self.slo_violated else "ok"
                lines.append(
                    f"  {name:<32s} attainment {attainment:8.2%}  "
                    f"budget left {budget:7.2%}  {verdict}"
                )
        if self.host_phase_s:
            total = sum(self.host_phase_s.values())
            parts = ", ".join(
                f"{phase} {seconds / total:.1%}" if total > 0 else phase
                for phase, seconds in self.host_phase_s.items()
            )
            lines.append(
                f"host phases          {total:.3f} s wall  ({parts})"
            )
        return lines


#: Layout version of ``repro simulate --report-json`` dumps.
REPORT_DUMP_FORMAT = 1


def report_dump(spec, report: SimulationReport, *, energy=None) -> dict:
    """A self-describing JSON document for one finished run.

    Carries the full spec, the report, and a provenance stamp so
    ``repro diff`` can compare two dumps -- or refuse, when the stamps
    show the runs are not comparable.
    """
    from dataclasses import asdict

    from repro.provenance import run_provenance

    return {
        "format": REPORT_DUMP_FORMAT,
        "kind": "report-dump",
        "provenance": run_provenance(spec),
        "spec": asdict(spec),
        "report": asdict(report),
        "energy": asdict(energy) if energy is not None else None,
    }


def write_report_dump(path, spec, report: SimulationReport, *, energy=None) -> None:
    """Persist a :func:`report_dump` document (``repro diff`` input)."""
    import json
    from pathlib import Path

    Path(path).write_text(
        json.dumps(report_dump(spec, report, energy=energy),
                   indent=2, sort_keys=True) + "\n",
        encoding="ascii",
    )


def _tenant_row(
    *,
    completed: int,
    shed: int,
    failed: int,
    waits: np.ndarray,
    turnarounds: np.ndarray,
) -> dict[str, float]:
    """One tenant's aggregate row, shared by both collectors so the
    arithmetic (numpy mean/percentile over identical value multisets)
    cannot drift apart."""
    return {
        "completed": completed,
        "shed": shed,
        "failed": failed,
        "mean_wait_s": float(waits.mean()) if waits.size else 0.0,
        "p50_wait_s": float(np.percentile(waits, 50)) if waits.size else 0.0,
        "p95_wait_s": float(np.percentile(waits, 95)) if waits.size else 0.0,
        "p99_wait_s": float(np.percentile(waits, 99)) if waits.size else 0.0,
        "mean_turnaround_s": (
            float(turnarounds.mean()) if turnarounds.size else 0.0
        ),
        "p50_turnaround_s": (
            float(np.percentile(turnarounds, 50)) if turnarounds.size else 0.0
        ),
        "p95_turnaround_s": (
            float(np.percentile(turnarounds, 95)) if turnarounds.size else 0.0
        ),
        "p99_turnaround_s": (
            float(np.percentile(turnarounds, 99)) if turnarounds.size else 0.0
        ),
    }


class MetricsCollector:
    """Accumulates task and resource records during a run."""

    def __init__(self) -> None:
        self.tasks: dict[object, TaskMetrics] = {}
        self.resources: dict[str, ResourceUsage] = {}
        self.trace: list[tuple[float, str, object]] = []
        #: Node ids ever part of the grid (denominator of availability).
        self.known_nodes: set[int] = set()
        #: node_id -> time it went down (open downtime window).
        self._down_since: dict[int, float] = {}
        #: node_id -> accumulated downtime of closed windows.
        self._downtime: dict[int, float] = {}
        self.fault_events = 0
        self.retry_events = 0
        self.fallback_events = 0
        # --- adaptive-resilience counters ---
        self.deadline_soft_misses = 0
        self.deadline_hard_misses = 0
        self.checkpoint_events = 0
        self.checkpoint_overhead_s = 0.0
        self.wasted_work_saved_s = 0.0
        self.migration_events = 0
        self.speculative_launches = 0
        self.speculative_wins = 0
        self.speculative_wasted_s = 0.0
        #: Pushed by the simulator from its HealthTracker at report time.
        self.quarantines = 0
        self.quarantine_time_s = 0.0
        # --- overload-protection counters ---
        self.shed_events = 0
        self.defer_events = 0
        self.brownout_degraded = 0
        #: Pushed by the simulator from its AdmissionController at
        #: report time (see :meth:`record_admission_stats`).
        self.placements_gated = 0
        self.brownout_transitions = 0
        self.brownout_max_stage = 0
        self.brownout_time_s = 0.0
        self.brownout_completions = 0
        # --- control-plane fault-tolerance counters ---
        self.orphan_events = 0
        #: Pushed by the simulator from its ReplicatedRMS wrapper and
        #: heartbeat bookkeeping at report time
        #: (see :meth:`record_failover_stats`).
        self.rms_crashes = 0
        self.rms_gray_events = 0
        self.failovers = 0
        self.control_plane_downtime_s = 0.0
        self.detections = 0
        self.detection_latency_p50_s = 0.0
        self.detection_latency_p95_s = 0.0
        self.false_suspicions = 0
        self.leases_expired = 0
        # --- SLO monitoring results ---
        #: Pushed by the simulator from its SLOMonitor at report time
        #: (see :meth:`record_slo_stats`); ``SLOResult``-shaped objects.
        self.slo_results: list = []

    # ------------------------------------------------------------------
    # Recording (called by the simulator)
    # ------------------------------------------------------------------
    def record_arrival(
        self, key: object, time: float, function: str = "", tenant: str = ""
    ) -> TaskMetrics:
        if key in self.tasks:
            raise ValueError(f"duplicate task key {key!r}")
        tm = TaskMetrics(key=key, arrival=time, function=function, tenant=tenant)
        self.tasks[key] = tm
        self.trace.append((time, "arrival", key))
        return tm

    def record_dispatch(
        self,
        key: object,
        time: float,
        *,
        pe_kind: str,
        node_id: int,
        transfer_time: float,
        synthesis_time: float,
        reconfig_time: float,
        reused: bool,
        resource_index: int | None = None,
        slices: int = 0,
    ) -> None:
        tm = self.tasks[key]
        tm.dispatch = time
        tm.pe_kind = pe_kind
        tm.node_id = node_id
        tm.resource_index = resource_index
        tm.slices = slices
        tm.transfer_time = transfer_time
        tm.synthesis_time = synthesis_time
        tm.reconfig_time = reconfig_time
        tm.reused_configuration = reused
        self.trace.append((time, "dispatch", key))

    def record_start(self, key: object, time: float) -> None:
        self.tasks[key].start = time
        self.trace.append((time, "start", key))

    def record_finish(self, key: object, time: float, resource_label: str) -> None:
        tm = self.tasks[key]
        tm.finish = time
        usage = self.resources.setdefault(resource_label, ResourceUsage(resource_label))
        if tm.start is not None:
            usage.busy_s += time - tm.start
        usage.tasks_executed += 1
        self.trace.append((time, "finish", key))

    def record_discard(self, key: object, time: float) -> None:
        self.tasks[key].discarded = True
        self.trace.append((time, "discard", key))

    # ------------------------------------------------------------------
    # Fault-injection recording
    # ------------------------------------------------------------------
    def record_fault(
        self,
        key: object,
        time: float,
        *,
        reason: str,
        wasted_time_s: float = 0.0,
        wasted_slice_seconds: float = 0.0,
    ) -> None:
        tm = self.tasks[key]
        tm.faults += 1
        if tm.first_fault is None:
            tm.first_fault = time
        tm.failure_reason = reason
        tm.wasted_time_s += wasted_time_s
        tm.wasted_slice_seconds += wasted_slice_seconds
        self.fault_events += 1
        self.trace.append((time, "fault", key))

    def record_retry(self, key: object, time: float) -> None:
        self.tasks[key].retries += 1
        self.retry_events += 1
        self.trace.append((time, "retry", key))

    def record_fallback(self, key: object, time: float) -> None:
        tm = self.tasks[key]
        tm.retries += 1
        tm.fell_back_to_gpp = True
        self.fallback_events += 1
        self.trace.append((time, "fallback", key))

    def record_failed(self, key: object, time: float, *, reason: str) -> None:
        tm = self.tasks[key]
        tm.failed = True
        tm.failure_reason = reason
        self.trace.append((time, "task-failed", key))

    # ------------------------------------------------------------------
    # Adaptive-resilience recording
    # ------------------------------------------------------------------
    def record_deadline_miss(self, key: object, time: float, *, hard: bool) -> None:
        tm = self.tasks[key]
        if hard:
            tm.deadline_missed = "hard"
            self.deadline_hard_misses += 1
        else:
            if tm.deadline_missed is None:
                tm.deadline_missed = "soft"
            self.deadline_soft_misses += 1
        self.trace.append((time, "timeout", key))

    def record_wasted(
        self, key: object, time: float, *, wasted_time_s: float,
        wasted_slice_seconds: float,
    ) -> None:
        """Waste from a non-fault teardown (a watchdog cancellation)."""
        tm = self.tasks[key]
        tm.wasted_time_s += wasted_time_s
        tm.wasted_slice_seconds += wasted_slice_seconds

    def record_checkpoint(self, key: object, time: float, *, overhead_s: float) -> None:
        tm = self.tasks[key]
        tm.checkpoints += 1
        tm.checkpoint_overhead_s += overhead_s
        self.checkpoint_events += 1
        self.checkpoint_overhead_s += overhead_s
        self.trace.append((time, "checkpoint", key))

    def record_checkpoint_restore(self, key: object, saved_s: float) -> None:
        """A fault/timeout destroyed a placement but *saved_s* seconds
        of its progress survived in the last checkpoint."""
        self.tasks[key].wasted_work_saved_s += saved_s
        self.wasted_work_saved_s += saved_s

    def record_migration(self, key: object, time: float) -> None:
        self.tasks[key].migrations += 1
        self.migration_events += 1
        self.trace.append((time, "migrate", key))

    def record_speculation(self, key: object, time: float) -> None:
        self.tasks[key].speculated = True
        self.speculative_launches += 1
        self.trace.append((time, "speculate", key))

    def record_speculation_result(
        self,
        key: object,
        time: float,
        *,
        win: bool,
        wasted_s: float,
        node_id: int | None = None,
        resource_index: int | None = None,
    ) -> None:
        """First finisher decided: *win* means the replica beat the
        primary; *wasted_s* is the loser's burned placement time.  On a
        win the task's placement attribution moves to the replica's
        node/resource (where it actually completed)."""
        if win:
            tm = self.tasks[key]
            tm.speculative_win = True
            if node_id is not None:
                tm.node_id = node_id
                tm.resource_index = resource_index
            self.speculative_wins += 1
        self.speculative_wasted_s += max(0.0, wasted_s)

    def record_orphan(
        self,
        key: object,
        time: float,
        *,
        wasted_time_s: float = 0.0,
        wasted_slice_seconds: float = 0.0,
    ) -> None:
        """A control-plane loss orphaned this task's placement and the
        recovery path re-queued it (:mod:`repro.sim.failover`).  Not a
        fault: the node did nothing wrong and no retry budget burns."""
        self.record_wasted(
            key,
            time,
            wasted_time_s=wasted_time_s,
            wasted_slice_seconds=wasted_slice_seconds,
        )
        self.orphan_events += 1
        self.trace.append((time, "orphan-recovered", key))

    def record_failover_stats(
        self,
        *,
        rms_crashes: int,
        rms_gray: int,
        failovers: int,
        downtime_s: float,
        detection_latencies: list[float],
        false_suspicions: int,
        leases_expired: int,
    ) -> None:
        """Pushed once by the simulator (from its ReplicatedRMS wrapper
        and heartbeat bookkeeping) just before the report is built."""
        self.rms_crashes = rms_crashes
        self.rms_gray_events = rms_gray
        self.failovers = failovers
        self.control_plane_downtime_s = downtime_s
        self.detections = len(detection_latencies)
        if detection_latencies:
            latencies = np.asarray(detection_latencies, dtype=float)
            self.detection_latency_p50_s = float(np.percentile(latencies, 50))
            self.detection_latency_p95_s = float(np.percentile(latencies, 95))
        self.false_suspicions = false_suspicions
        self.leases_expired = leases_expired

    def record_quarantine_stats(self, *, episodes: int, total_s: float) -> None:
        """Pushed once by the simulator (from its HealthTracker) just
        before the report is built."""
        self.quarantines = episodes
        self.quarantine_time_s = total_s

    # ------------------------------------------------------------------
    # Overload-protection recording
    # ------------------------------------------------------------------
    def record_shed(self, key: object, time: float, *, reason: str) -> None:
        """Terminal rejection by admission control or load shedding.
        Deliberately does *not* mark the task discarded: ``discarded``
        keeps counting only age-based queue discards."""
        tm = self.tasks[key]
        tm.shed = True
        tm.shed_reason = reason
        self.shed_events += 1
        self.trace.append((time, "shed", key))

    def record_defer(self, key: object, time: float) -> None:
        self.tasks[key].defers += 1
        self.defer_events += 1
        self.trace.append((time, "defer", key))

    def record_degrade(self, key: object, time: float) -> None:
        tm = self.tasks[key]
        tm.degraded_to_gpp = True
        self.brownout_degraded += 1
        self.trace.append((time, "degrade", key))

    def record_admission_stats(
        self,
        *,
        gated: int,
        transitions: int,
        max_stage: int,
        brownout_time_s: float,
        brownout_completions: int,
    ) -> None:
        """Pushed once by the simulator (from its AdmissionController)
        just before the report is built."""
        self.placements_gated = gated
        self.brownout_transitions = transitions
        self.brownout_max_stage = max_stage
        self.brownout_time_s = brownout_time_s
        self.brownout_completions = brownout_completions

    # ------------------------------------------------------------------
    # SLO monitoring recording
    # ------------------------------------------------------------------
    def record_slo_stats(self, results: list) -> None:
        """Pushed once by the simulator (from its finalized SLOMonitor)
        just before the report is built.  *results* are
        :class:`repro.sim.slo.SLOResult` instances."""
        self.slo_results = list(results)

    def _slo_report_kwargs(self) -> dict:
        """Report fields derived from the pushed SLO results (shared by
        both collectors so the derivations cannot drift apart)."""
        results = self.slo_results
        return {
            "slo_objectives": len(results),
            "slo_breaches": sum(r.breach_count for r in results),
            "slo_alerts_fired": sum(r.alerts_fired for r in results),
            "slo_alerts_resolved": sum(r.alerts_resolved for r in results),
            "slo_attainment": {r.name: r.attainment for r in results},
            "slo_error_budget_remaining": {
                r.name: r.error_budget_remaining for r in results
            },
            "slo_breach_seconds": {r.name: r.breach_seconds for r in results},
            "slo_violated": [r.name for r in results if r.violated],
        }

    # ------------------------------------------------------------------
    # Node availability windows
    # ------------------------------------------------------------------
    def register_node(self, node_id: int) -> None:
        self.known_nodes.add(node_id)

    def record_node_down(self, node_id: int, time: float) -> None:
        self.known_nodes.add(node_id)
        self._down_since.setdefault(node_id, time)

    def record_node_up(self, node_id: int, time: float) -> None:
        since = self._down_since.pop(node_id, None)
        if since is not None:
            self._downtime[node_id] = self._downtime.get(node_id, 0.0) + (time - since)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, horizon_s: float) -> SimulationReport:
        finished = [t for t in self.tasks.values() if t.finish is not None]
        discarded = [t for t in self.tasks.values() if t.discarded]
        failed = [t for t in self.tasks.values() if t.failed]
        shed = [t for t in self.tasks.values() if t.shed]
        pending = [
            t
            for t in self.tasks.values()
            if t.finish is None and not t.discarded and not t.failed and not t.shed
        ]
        waits = np.array([t.wait_time for t in finished if t.wait_time is not None])
        turnarounds = np.array([t.turnaround for t in finished])
        reconfigs = [t for t in finished if t.reconfig_time > 0]
        reuse_hits = sum(1 for t in finished if t.reused_configuration)
        hw_tasks = sum(1 for t in finished if t.pe_kind == "RPE")
        utilizations = {
            label: usage.utilization(horizon_s) for label, usage in self.resources.items()
        }
        by_kind: dict[str, int] = {}
        for t in finished:
            by_kind[t.pe_kind] = by_kind.get(t.pe_kind, 0) + 1
        # Recovery aggregates.  Downtime windows still open at the
        # horizon (a node that never rejoined) are closed against it.
        downtime = dict(self._downtime)
        for node_id, since in self._down_since.items():
            downtime[node_id] = downtime.get(node_id, 0.0) + max(
                0.0, horizon_s - since
            )
        node_seconds = len(self.known_nodes) * horizon_s
        availability = (
            max(0.0, 1.0 - sum(downtime.values()) / node_seconds)
            if node_seconds > 0
            else 1.0
        )
        repairs = np.array(
            [
                t.finish - t.first_fault
                for t in finished
                if t.first_fault is not None
            ]
        )
        # Per-tenant aggregates, tenants in order of first arrival
        # (the bulk collector reproduces the same order through its
        # interning table, so the two reports stay byte-equal).
        per_tenant: dict[str, dict[str, float]] = {}
        tenant_names: list[str] = []
        for t in self.tasks.values():
            if t.tenant and t.tenant not in per_tenant:
                per_tenant[t.tenant] = {}
                tenant_names.append(t.tenant)
        for name in tenant_names:
            rows = [t for t in self.tasks.values() if t.tenant == name]
            fin = [t for t in rows if t.finish is not None]
            t_waits = np.array(
                [t.wait_time for t in fin if t.wait_time is not None]
            )
            t_turn = np.array([t.turnaround for t in fin])
            per_tenant[name] = _tenant_row(
                completed=len(fin),
                shed=sum(1 for t in rows if t.shed),
                failed=sum(1 for t in rows if t.failed),
                waits=t_waits,
                turnarounds=t_turn,
            )
        return SimulationReport(
            horizon_s=horizon_s,
            completed=len(finished),
            discarded=len(discarded),
            pending=len(pending),
            mean_wait_s=float(waits.mean()) if waits.size else 0.0,
            p95_wait_s=float(np.percentile(waits, 95)) if waits.size else 0.0,
            p50_wait_s=float(np.percentile(waits, 50)) if waits.size else 0.0,
            p99_wait_s=float(np.percentile(waits, 99)) if waits.size else 0.0,
            mean_turnaround_s=float(turnarounds.mean()) if turnarounds.size else 0.0,
            p50_turnaround_s=(
                float(np.percentile(turnarounds, 50)) if turnarounds.size else 0.0
            ),
            p95_turnaround_s=(
                float(np.percentile(turnarounds, 95)) if turnarounds.size else 0.0
            ),
            p99_turnaround_s=(
                float(np.percentile(turnarounds, 99)) if turnarounds.size else 0.0
            ),
            makespan_s=max((t.finish for t in finished), default=0.0),
            reconfigurations=len(reconfigs),
            total_reconfig_time_s=sum(t.reconfig_time for t in reconfigs),
            reuse_hits=reuse_hits,
            reuse_rate=reuse_hits / hw_tasks if hw_tasks else 0.0,
            mean_utilization=(
                float(np.mean(list(utilizations.values()))) if utilizations else 0.0
            ),
            per_resource_utilization=utilizations,
            tasks_by_pe_kind=by_kind,
            failed=len(failed),
            fault_events=self.fault_events,
            retries=self.retry_events,
            gpp_fallbacks=self.fallback_events,
            availability=availability,
            mttr_s=float(repairs.mean()) if repairs.size else 0.0,
            wasted_work_s=sum(t.wasted_time_s for t in self.tasks.values()),
            wasted_slice_seconds=sum(
                t.wasted_slice_seconds for t in self.tasks.values()
            ),
            goodput_tasks_per_s=len(finished) / horizon_s if horizon_s > 0 else 0.0,
            deadline_soft_misses=self.deadline_soft_misses,
            deadline_hard_misses=self.deadline_hard_misses,
            deadline_miss_rate=(
                sum(1 for t in self.tasks.values() if t.deadline_missed is not None)
                / len(self.tasks)
                if self.tasks
                else 0.0
            ),
            quarantines=self.quarantines,
            quarantine_time_s=self.quarantine_time_s,
            checkpoints=self.checkpoint_events,
            checkpoint_overhead_s=self.checkpoint_overhead_s,
            wasted_work_saved_s=self.wasted_work_saved_s,
            migrations=self.migration_events,
            speculative_launches=self.speculative_launches,
            speculative_wins=self.speculative_wins,
            speculative_win_rate=(
                self.speculative_wins / self.speculative_launches
                if self.speculative_launches
                else 0.0
            ),
            speculative_wasted_s=self.speculative_wasted_s,
            shed=len(shed),
            admission_deferrals=self.defer_events,
            placements_gated=self.placements_gated,
            brownout_degraded=self.brownout_degraded,
            brownout_transitions=self.brownout_transitions,
            brownout_max_stage=self.brownout_max_stage,
            brownout_time_s=self.brownout_time_s,
            overload_goodput_tasks_per_s=(
                self.brownout_completions / self.brownout_time_s
                if self.brownout_time_s > 0
                else 0.0
            ),
            rms_crashes=self.rms_crashes,
            rms_gray_events=self.rms_gray_events,
            failovers=self.failovers,
            control_plane_downtime_s=self.control_plane_downtime_s,
            detections=self.detections,
            detection_latency_p50_s=self.detection_latency_p50_s,
            detection_latency_p95_s=self.detection_latency_p95_s,
            false_suspicions=self.false_suspicions,
            leases_expired=self.leases_expired,
            orphaned_tasks=self.orphan_events,
            orphans_recovered=self.orphan_events,
            per_tenant=per_tenant,
            **self._slo_report_kwargs(),
        )


class _TaskRow:
    """Flyweight read view of one task's columns (bulk collector).

    Exposes the two fields the simulator reads back mid-run
    (``arrival`` and ``dispatch``) with the same None-for-missing
    convention as :class:`TaskMetrics`.
    """

    __slots__ = ("_c", "_i")

    def __init__(self, collector: "BulkMetricsCollector", index: int):
        self._c = collector
        self._i = index

    @property
    def arrival(self) -> float:
        return float(self._c._arrival[self._i])

    @property
    def dispatch(self) -> float | None:
        v = self._c._dispatch[self._i]
        return None if np.isnan(v) else float(v)


class _TaskRowMap:
    """Mapping facade over the bulk collector's columns."""

    __slots__ = ("_c",)

    def __init__(self, collector: "BulkMetricsCollector"):
        self._c = collector

    def __getitem__(self, key: object) -> _TaskRow:
        return _TaskRow(self._c, self._c._index[key])

    def __contains__(self, key: object) -> bool:
        return key in self._c._index

    def __len__(self) -> int:
        return self._c._n


class BulkMetricsCollector(MetricsCollector):
    """Array-backed :class:`MetricsCollector` for million-task runs.

    The standard collector allocates one :class:`TaskMetrics` dataclass
    per task and appends one trace tuple per record call -- hundreds of
    bytes and several dict operations per event, which dominates memory
    at 1e6 tasks.  This collector stores the per-task timeline in
    preallocated numpy columns (8-80 bytes per task) and skips the
    per-event trace (``self.trace`` stays available for the rare
    node-level events the simulator appends directly).

    ``report()`` replicates the base-class arithmetic *exactly* -- same
    value multisets, same accumulation order (insertion order == column
    order), numpy mean/percentile for latencies and Python left-fold
    ``sum`` for the waste/reconfig totals -- so for identical record
    streams the two collectors produce identical reports (locked by a
    differential test).

    Limitations, by design: per-task drill-down fields that no report
    aggregate reads (node ids, transfer/synthesis splits, failure
    reasons, per-task retry counts) are not stored, so the energy
    auditor and trace tooling need the standard collector.
    """

    _INITIAL_CAPACITY = 1024

    def __init__(self, capacity: int | None = None) -> None:
        super().__init__()
        cap = max(1, int(capacity) if capacity is not None else self._INITIAL_CAPACITY)
        self._n = 0
        self._index: dict[object, int] = {}
        self._arrival = np.empty(cap)
        self._dispatch = np.full(cap, np.nan)
        self._start = np.full(cap, np.nan)
        self._finish = np.full(cap, np.nan)
        self._reconfig = np.zeros(cap)
        self._wasted_t = np.zeros(cap)
        self._wasted_sl = np.zeros(cap)
        self._first_fault = np.full(cap, np.nan)
        self._reused = np.zeros(cap, dtype=bool)
        self._discarded = np.zeros(cap, dtype=bool)
        self._failed = np.zeros(cap, dtype=bool)
        self._shed = np.zeros(cap, dtype=bool)
        #: pe_kind interned to a small int; -1 = never dispatched.
        self._kind_code = np.full(cap, -1, dtype=np.int16)
        #: tenant interned to a small int; -1 = untagged (single-tenant).
        self._tenant_code = np.full(cap, -1, dtype=np.int16)
        #: 0 = met, 1 = soft miss, 2 = hard miss.
        self._deadline_code = np.zeros(cap, dtype=np.int8)
        self._kind_codes: dict[str, int] = {}
        self._kind_names: list[str] = []
        self._tenant_codes: dict[str, int] = {}
        self._tenant_names: list[str] = []
        self.tasks = _TaskRowMap(self)  # type: ignore[assignment]

    def _grow(self) -> None:
        cap = len(self._arrival) * 2
        for name in (
            "_arrival", "_dispatch", "_start", "_finish", "_reconfig",
            "_wasted_t", "_wasted_sl", "_first_fault", "_reused",
            "_discarded", "_failed", "_shed", "_kind_code", "_tenant_code",
            "_deadline_code",
        ):
            old = getattr(self, name)
            if old.dtype == np.float64 and name in ("_dispatch", "_start", "_finish", "_first_fault"):
                new = np.full(cap, np.nan)
            elif old.dtype == np.int16:
                new = np.full(cap, -1, dtype=np.int16)
            else:
                new = np.zeros(cap, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    def _kind(self, pe_kind: str) -> int:
        code = self._kind_codes.get(pe_kind)
        if code is None:
            code = len(self._kind_names)
            self._kind_codes[pe_kind] = code
            self._kind_names.append(pe_kind)
        return code

    def _tenant(self, tenant: str) -> int:
        code = self._tenant_codes.get(tenant)
        if code is None:
            code = len(self._tenant_names)
            self._tenant_codes[tenant] = code
            self._tenant_names.append(tenant)
        return code

    # -- recording ------------------------------------------------------
    def record_arrival(self, key: object, time: float, function: str = "", tenant: str = "") -> None:  # type: ignore[override]
        if key in self._index:
            raise ValueError(f"duplicate task key {key!r}")
        i = self._n
        if i == len(self._arrival):
            self._grow()
        self._index[key] = i
        self._arrival[i] = time
        if tenant:
            self._tenant_code[i] = self._tenant(tenant)
        self._n = i + 1

    def record_dispatch(
        self,
        key: object,
        time: float,
        *,
        pe_kind: str,
        node_id: int,
        transfer_time: float,
        synthesis_time: float,
        reconfig_time: float,
        reused: bool,
        resource_index: int | None = None,
        slices: int = 0,
    ) -> None:
        i = self._index[key]
        self._dispatch[i] = time
        self._kind_code[i] = self._kind(pe_kind)
        self._reconfig[i] = reconfig_time
        self._reused[i] = reused

    def record_start(self, key: object, time: float) -> None:
        self._start[self._index[key]] = time

    def record_finish(self, key: object, time: float, resource_label: str) -> None:
        i = self._index[key]
        self._finish[i] = time
        usage = self.resources.setdefault(resource_label, ResourceUsage(resource_label))
        start = self._start[i]
        if not np.isnan(start):
            usage.busy_s += time - start
        usage.tasks_executed += 1

    def record_discard(self, key: object, time: float) -> None:
        self._discarded[self._index[key]] = True

    def record_fault(
        self,
        key: object,
        time: float,
        *,
        reason: str,
        wasted_time_s: float = 0.0,
        wasted_slice_seconds: float = 0.0,
    ) -> None:
        i = self._index[key]
        if np.isnan(self._first_fault[i]):
            self._first_fault[i] = time
        self._wasted_t[i] += wasted_time_s
        self._wasted_sl[i] += wasted_slice_seconds
        self.fault_events += 1

    def record_retry(self, key: object, time: float) -> None:
        self.retry_events += 1

    def record_fallback(self, key: object, time: float) -> None:
        self.fallback_events += 1

    def record_failed(self, key: object, time: float, *, reason: str) -> None:
        self._failed[self._index[key]] = True

    def record_deadline_miss(self, key: object, time: float, *, hard: bool) -> None:
        i = self._index[key]
        if hard:
            self._deadline_code[i] = 2
            self.deadline_hard_misses += 1
        else:
            if self._deadline_code[i] == 0:
                self._deadline_code[i] = 1
            self.deadline_soft_misses += 1

    def record_wasted(
        self, key: object, time: float, *, wasted_time_s: float,
        wasted_slice_seconds: float,
    ) -> None:
        i = self._index[key]
        self._wasted_t[i] += wasted_time_s
        self._wasted_sl[i] += wasted_slice_seconds

    def record_checkpoint(self, key: object, time: float, *, overhead_s: float) -> None:
        self.checkpoint_events += 1
        self.checkpoint_overhead_s += overhead_s

    def record_checkpoint_restore(self, key: object, saved_s: float) -> None:
        self.wasted_work_saved_s += saved_s

    def record_migration(self, key: object, time: float) -> None:
        self.migration_events += 1

    def record_speculation(self, key: object, time: float) -> None:
        self.speculative_launches += 1

    def record_speculation_result(
        self,
        key: object,
        time: float,
        *,
        win: bool,
        wasted_s: float,
        node_id: int | None = None,
        resource_index: int | None = None,
    ) -> None:
        if win:
            self.speculative_wins += 1
        self.speculative_wasted_s += max(0.0, wasted_s)

    def record_shed(self, key: object, time: float, *, reason: str) -> None:
        self._shed[self._index[key]] = True
        self.shed_events += 1

    def record_defer(self, key: object, time: float) -> None:
        self.defer_events += 1

    def record_degrade(self, key: object, time: float) -> None:
        self.brownout_degraded += 1

    def record_orphan(
        self,
        key: object,
        time: float,
        *,
        wasted_time_s: float = 0.0,
        wasted_slice_seconds: float = 0.0,
    ) -> None:
        # Same accumulation as the base class, minus the per-event
        # trace tuple (bulk collectors skip the per-task trace).
        self.record_wasted(
            key,
            time,
            wasted_time_s=wasted_time_s,
            wasted_slice_seconds=wasted_slice_seconds,
        )
        self.orphan_events += 1

    # -- reporting ------------------------------------------------------
    def report(self, horizon_s: float) -> SimulationReport:
        n = self._n
        arrival = self._arrival[:n]
        dispatch = self._dispatch[:n]
        finish = self._finish[:n]
        discarded = self._discarded[:n]
        failed = self._failed[:n]
        shed = self._shed[:n]
        finished = ~np.isnan(finish)
        pending = np.isnan(finish) & ~discarded & ~failed & ~shed
        # Same multisets in the same (insertion) order as the base
        # collector's list comprehensions.
        waits = (dispatch - arrival)[finished & ~np.isnan(dispatch)]
        turnarounds = (finish - arrival)[finished]
        reconfig_mask = finished & (self._reconfig[:n] > 0)
        reuse_hits = int((finished & self._reused[:n]).sum())
        rpe_code = self._kind_codes.get("RPE")
        kinds = self._kind_code[:n]
        hw_tasks = int((finished & (kinds == rpe_code)).sum()) if rpe_code is not None else 0
        utilizations = {
            label: usage.utilization(horizon_s) for label, usage in self.resources.items()
        }
        # by-kind counts in order of first finished appearance, exactly
        # like the base collector's insertion-ordered dict.
        by_kind: dict[str, int] = {}
        finished_kinds = kinds[finished]
        if finished_kinds.size:
            codes, firsts, counts = np.unique(
                finished_kinds, return_index=True, return_counts=True
            )
            for pos in np.argsort(firsts):
                code = int(codes[pos])
                name = self._kind_names[code] if code >= 0 else ""
                by_kind[name] = int(counts[pos])
        downtime = dict(self._downtime)
        for node_id, since in self._down_since.items():
            downtime[node_id] = downtime.get(node_id, 0.0) + max(
                0.0, horizon_s - since
            )
        node_seconds = len(self.known_nodes) * horizon_s
        availability = (
            max(0.0, 1.0 - sum(downtime.values()) / node_seconds)
            if node_seconds > 0
            else 1.0
        )
        first_fault = self._first_fault[:n]
        repairs = (finish - first_fault)[finished & ~np.isnan(first_fault)]
        completed = int(finished.sum())
        # Per-tenant aggregates.  Interning assigns codes in order of
        # first arrival, so iterating codes reproduces the base
        # collector's first-appearance tenant order; masks select the
        # same value multisets in the same (column == insertion) order.
        per_tenant: dict[str, dict[str, float]] = {}
        tenant_codes = self._tenant_code[:n]
        for code, name in enumerate(self._tenant_names):
            mask = tenant_codes == code
            fin_mask = mask & finished
            per_tenant[name] = _tenant_row(
                completed=int(fin_mask.sum()),
                shed=int((mask & shed).sum()),
                failed=int((mask & failed).sum()),
                waits=(dispatch - arrival)[fin_mask & ~np.isnan(dispatch)],
                turnarounds=(finish - arrival)[fin_mask],
            )
        return SimulationReport(
            horizon_s=horizon_s,
            completed=completed,
            discarded=int(discarded.sum()),
            pending=int(pending.sum()),
            mean_wait_s=float(waits.mean()) if waits.size else 0.0,
            p95_wait_s=float(np.percentile(waits, 95)) if waits.size else 0.0,
            p50_wait_s=float(np.percentile(waits, 50)) if waits.size else 0.0,
            p99_wait_s=float(np.percentile(waits, 99)) if waits.size else 0.0,
            mean_turnaround_s=float(turnarounds.mean()) if turnarounds.size else 0.0,
            p50_turnaround_s=(
                float(np.percentile(turnarounds, 50)) if turnarounds.size else 0.0
            ),
            p95_turnaround_s=(
                float(np.percentile(turnarounds, 95)) if turnarounds.size else 0.0
            ),
            p99_turnaround_s=(
                float(np.percentile(turnarounds, 99)) if turnarounds.size else 0.0
            ),
            makespan_s=float(finish[finished].max()) if completed else 0.0,
            reconfigurations=int(reconfig_mask.sum()),
            # Python left-fold sum, like the base collector (numpy's
            # pairwise summation rounds differently).
            total_reconfig_time_s=sum(self._reconfig[:n][reconfig_mask].tolist()),
            reuse_hits=reuse_hits,
            reuse_rate=reuse_hits / hw_tasks if hw_tasks else 0.0,
            mean_utilization=(
                float(np.mean(list(utilizations.values()))) if utilizations else 0.0
            ),
            per_resource_utilization=utilizations,
            tasks_by_pe_kind=by_kind,
            failed=int(failed.sum()),
            fault_events=self.fault_events,
            retries=self.retry_events,
            gpp_fallbacks=self.fallback_events,
            availability=availability,
            mttr_s=float(repairs.mean()) if repairs.size else 0.0,
            wasted_work_s=sum(self._wasted_t[:n].tolist()),
            wasted_slice_seconds=sum(self._wasted_sl[:n].tolist()),
            goodput_tasks_per_s=completed / horizon_s if horizon_s > 0 else 0.0,
            deadline_soft_misses=self.deadline_soft_misses,
            deadline_hard_misses=self.deadline_hard_misses,
            deadline_miss_rate=(
                int((self._deadline_code[:n] != 0).sum()) / n if n else 0.0
            ),
            quarantines=self.quarantines,
            quarantine_time_s=self.quarantine_time_s,
            checkpoints=self.checkpoint_events,
            checkpoint_overhead_s=self.checkpoint_overhead_s,
            wasted_work_saved_s=self.wasted_work_saved_s,
            migrations=self.migration_events,
            speculative_launches=self.speculative_launches,
            speculative_wins=self.speculative_wins,
            speculative_win_rate=(
                self.speculative_wins / self.speculative_launches
                if self.speculative_launches
                else 0.0
            ),
            speculative_wasted_s=self.speculative_wasted_s,
            shed=int(shed.sum()),
            admission_deferrals=self.defer_events,
            placements_gated=self.placements_gated,
            brownout_degraded=self.brownout_degraded,
            brownout_transitions=self.brownout_transitions,
            brownout_max_stage=self.brownout_max_stage,
            brownout_time_s=self.brownout_time_s,
            overload_goodput_tasks_per_s=(
                self.brownout_completions / self.brownout_time_s
                if self.brownout_time_s > 0
                else 0.0
            ),
            rms_crashes=self.rms_crashes,
            rms_gray_events=self.rms_gray_events,
            failovers=self.failovers,
            control_plane_downtime_s=self.control_plane_downtime_s,
            detections=self.detections,
            detection_latency_p50_s=self.detection_latency_p50_s,
            detection_latency_p95_s=self.detection_latency_p95_s,
            false_suspicions=self.false_suspicions,
            leases_expired=self.leases_expired,
            orphaned_tasks=self.orphan_events,
            orphans_recovered=self.orphan_events,
            per_tenant=per_tenant,
            **self._slo_report_kwargs(),
        )
