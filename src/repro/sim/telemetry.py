"""Sim-time telemetry: labeled instruments, derived spans, exporters.

The paper's quantitative story is about *watching* a reconfigurable
grid over time -- utilization evolving, reconfiguration time
accumulating, the resilience layer quarantining and rehabilitating
nodes.  PRs 1-3 gave the simulator a flat event trace and end-of-run
scalars; this module adds the time dimension:

* :class:`TelemetryRegistry` -- a registry of :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments keyed by name +
  labels (node, RPE, strategy, event kind...).  Gauges and counters
  record ``(simulated time, value)`` samples on every change, so a
  finished run carries full step-wise time-series with no periodic
  sampler perturbing the event engine.  The registry reads time from a
  pluggable ``clock`` (the simulator installs ``engine.now``), which
  lets hooks in layers that never see the clock (RMS, JSS, health
  tracker) sample correctly.
* **Span derivation** -- :func:`build_task_spans` and
  :func:`build_node_spans` fold a :class:`~repro.sim.tracing.TraceEvent`
  stream into task-lifecycle spans (queued -> setup -> execute, one
  cycle per placement attempt, annotated with fault / timeout /
  checkpoint / migrate / speculate instants) and node-occupancy spans
  (one per fabric-region allocation).
* **Exporters** -- :func:`to_chrome_trace` renders spans as Chrome
  trace-event JSON (the format ``chrome://tracing`` and Perfetto load);
  :meth:`TelemetryRegistry.open_metrics` dumps instruments in an
  OpenMetrics-style text format; :meth:`TelemetryRegistry.to_json` /
  :func:`load_telemetry` round-trip the full registry through the JSON
  file ``repro simulate --telemetry`` writes and ``repro report``
  reads.

Determinism contract: telemetry is purely observational.  It schedules
no engine events, draws no randomness, and mutates no simulator state,
so an instrumented run emits a byte-identical trace to an
uninstrumented one -- and with ``telemetry=None`` every hook is a
single attribute check (the PR 3 zero-cost-when-disabled idiom).
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.sim.tracing import TraceEvent

#: Telemetry JSON file layout version (``repro report`` checks it).
TELEMETRY_FORMAT = 1

#: Default histogram buckets (seconds): wait / turnaround scales.
DEFAULT_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 60.0)

#: Numeric encoding of circuit-breaker states for the breaker gauge.
BREAKER_STATE_VALUES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}

#: Numeric encoding of the ``control_plane_state`` gauge sampled by
#: the simulator's failover layer (:mod:`repro.sim.failover`).
CONTROL_PLANE_STATE_VALUES = {"up": 0.0, "gray": 1.0, "down": 2.0}


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Instrument:
    """Base of all instruments: a name, labels, and a help string."""

    kind = "untyped"

    def __init__(self, registry: "TelemetryRegistry", name: str,
                 labels: dict[str, object], help: str = ""):
        self.registry = registry
        self.name = name
        self.labels = {k: str(v) for k, v in labels.items()}
        self.help = help

    def _now(self) -> float:
        return self.registry.clock()

    def label_suffix(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in sorted(self.labels.items()))
        return "{" + inner + "}"


class _Sampled(Instrument):
    """An instrument that keeps a ``(time, value)`` step series."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.points: list[tuple[float, float]] = []

    @property
    def value(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def _record(self, value: float) -> None:
        now = self._now()
        if self.points:
            last_t, last_v = self.points[-1]
            if value == last_v:
                return  # step series: only changes are interesting
            if now == last_t:
                self.points[-1] = (now, value)
                return
        self.points.append((now, value))

    def value_at(self, t: float) -> float:
        """Step-wise lookup: the newest sample at or before *t*."""
        index = bisect_right(self.points, (t, float("inf"))) - 1
        return self.points[index][1] if index >= 0 else 0.0


class Counter(_Sampled):
    """Monotonically increasing total (events, seconds of overhead)."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._record(self.value + amount)


class Gauge(_Sampled):
    """A value that goes up and down (queue depth, utilization)."""

    kind = "gauge"

    def set(self, value: float) -> None:
        self._record(float(value))

    def inc(self, amount: float = 1.0) -> None:
        self._record(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self._record(self.value - amount)


class Histogram(Instrument):
    """Cumulative-bucket histogram (OpenMetrics ``le`` convention)."""

    kind = "histogram"

    def __init__(self, registry: "TelemetryRegistry", name: str,
                 labels: dict[str, object], help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(registry, name, labels, help)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        # ``le`` convention: bucket i counts values <= buckets[i]; the
        # final slot is the +inf tail.
        index = bisect_left(self.buckets, value)
        self.bucket_counts[index] += 1

    def cumulative_counts(self) -> list[int]:
        """Counts per ``le`` bound, cumulative, +inf last."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


class TelemetryRegistry:
    """Get-or-create registry of instruments, with a sim-time clock.

    The simulator installs its engine clock via :meth:`set_clock`; every
    layer that holds the registry (RMS, JSS, health tracker) then
    samples against simulated seconds without ever seeing the engine.
    ``meta`` carries run-level context (strategy, seed, summary lines)
    into the telemetry file for the dashboard's header.
    """

    def __init__(self, *, clock: Callable[[], float] | None = None):
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.meta: dict[str, object] = {}
        self._instruments: dict[tuple[str, tuple], Instrument] = {}

    def set_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    # ------------------------------------------------------------------
    # Instrument factories (get-or-create, keyed by name + labels)
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, help: str, labels: dict, **kwargs) -> Instrument:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(self, name, labels, help, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"instrument {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def instruments(self) -> list[Instrument]:
        return [self._instruments[key] for key in sorted(self._instruments)]

    def series(self, name: str | None = None) -> list[_Sampled]:
        """Every sampled (counter/gauge) instrument, optionally by name."""
        return [
            i for i in self.instruments
            if isinstance(i, _Sampled) and (name is None or i.name == name)
        ]

    # ------------------------------------------------------------------
    # OpenMetrics-style text dump
    # ------------------------------------------------------------------
    def open_metrics(self) -> str:
        """Instrument end-states in an OpenMetrics-style text format."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for instrument in self.instruments:
            if instrument.name not in seen_headers:
                seen_headers.add(instrument.name)
                if instrument.help:
                    lines.append(f"# HELP {instrument.name} {instrument.help}")
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            suffix = instrument.label_suffix()
            if isinstance(instrument, Histogram):
                cumulative = instrument.cumulative_counts()
                for bound, count in zip(instrument.buckets, cumulative):
                    extra = f'le="{bound:g}"'
                    inner = suffix[1:-1] + "," + extra if suffix else extra
                    lines.append(f"{instrument.name}_bucket{{{inner}}} {count}")
                inner = (suffix[1:-1] + ',le="+Inf"') if suffix else 'le="+Inf"'
                lines.append(f"{instrument.name}_bucket{{{inner}}} {instrument.count}")
                lines.append(f"{instrument.name}_sum{suffix} {instrument.sum:g}")
                lines.append(f"{instrument.name}_count{suffix} {instrument.count}")
            else:
                lines.append(f"{instrument.name}{suffix} {instrument.value:g}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # JSON round-trip (the ``--telemetry`` file)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        series = []
        histograms = []
        for instrument in self.instruments:
            record: dict[str, object] = {
                "name": instrument.name,
                "labels": dict(sorted(instrument.labels.items())),
                "help": instrument.help,
            }
            if isinstance(instrument, Histogram):
                record.update(
                    buckets=list(instrument.buckets),
                    counts=list(instrument.bucket_counts),
                    sum=instrument.sum,
                    count=instrument.count,
                )
                histograms.append(record)
            else:
                record.update(
                    type=instrument.kind,
                    points=[[t, v] for t, v in instrument.points],
                )
                series.append(record)
        return {
            "format": TELEMETRY_FORMAT,
            "meta": self.meta,
            "series": series,
            "histograms": histograms,
        }

    def write_json(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), sort_keys=True) + "\n", encoding="ascii"
        )


def load_telemetry(path: str | Path) -> TelemetryRegistry:
    """Rebuild a registry from a ``--telemetry`` JSON file."""
    data = json.loads(Path(path).read_text(encoding="ascii"))
    if data.get("format") != TELEMETRY_FORMAT:
        raise ValueError(
            f"unsupported telemetry format {data.get('format')!r} "
            f"(expected {TELEMETRY_FORMAT})"
        )
    registry = TelemetryRegistry()
    # `or {}` / `or []`: a dump may carry explicit nulls for these keys
    # (hand-edited or produced by another tool); an empty registry must
    # load cleanly so `repro report` can render its empty state.
    registry.meta = data.get("meta") or {}
    for record in data.get("series") or []:
        cls = Counter if record.get("type") == "counter" else Gauge
        instrument = registry._get(
            cls, record["name"], record.get("help", ""), record.get("labels", {})
        )
        instrument.points = [
            (float(t), float(v)) for t, v in record.get("points") or []
        ]
    for record in data.get("histograms") or []:
        histogram = registry.histogram(
            record["name"],
            record.get("help", ""),
            buckets=tuple(record["buckets"]),
            **record.get("labels", {}),
        )
        histogram.bucket_counts = [int(c) for c in record["counts"]]
        histogram.sum = float(record["sum"])
        histogram.count = int(record["count"])
    return registry


# ----------------------------------------------------------------------
# Derived spans: folding the TraceEvent stream into intervals
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Span:
    """One derived interval on one track.

    ``track`` groups spans for display (a task key, or a fabric
    region); ``phase`` is the span's category (``queued`` / ``setup`` /
    ``execute`` / ``occupied``); ``args`` carries the originating event
    payload fields worth surfacing in a trace viewer.
    """

    track: str
    phase: str
    start: float
    end: float
    name: str = ""
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A point annotation on a track (fault, checkpoint, migrate...)."""

    track: str
    kind: str
    time: float
    args: dict = field(default_factory=dict)


#: Event kinds rendered as instant annotations on the task's track.
ANNOTATION_KINDS = frozenset(
    {"fault", "retry", "fallback", "task-failed", "timeout", "checkpoint",
     "migrate", "speculate", "probe", "discard", "requeue",
     "lease-expire", "orphan-recovered"}
)

#: Task lifecycle phases, in display order.
TASK_PHASES = ("queued", "setup", "execute")


def _task_track(key: object) -> str:
    if isinstance(key, tuple):
        return "task " + ".".join(str(part) for part in key)
    return f"task {key}"


def build_task_spans(
    events: list[TraceEvent],
) -> tuple[list[Span], list[Instant]]:
    """Fold task-lifecycle events into per-attempt phase spans.

    Each placement attempt contributes up to three spans on the task's
    track: ``queued`` (submit/requeue -> dispatch), ``setup`` (dispatch
    -> start; the transfer + synthesis + reconfigure window) and
    ``execute`` (start -> complete, or until the placement is destroyed
    by a fault / timeout / requeue).  Faults, retries, checkpoints,
    migrations, speculation and watchdog timeouts become
    :class:`Instant` annotations, so a trace viewer shows *why* a span
    ended where it did.
    """
    spans: list[Span] = []
    instants: list[Instant] = []
    #: key -> (phase, phase start time, args carried from dispatch)
    open_phase: dict[object, tuple[str, float, dict]] = {}

    def close(key: object, end: float) -> None:
        state = open_phase.pop(key, None)
        if state is not None:
            phase, start, args = state
            spans.append(Span(_task_track(key), phase, start, end, args=args))

    for event in events:
        key, kind, t = event.key, event.kind, event.time
        if kind == "submit":
            open_phase[key] = ("queued", t, dict(event.payload))
        elif kind == "dispatch":
            close(key, t)
            open_phase[key] = ("setup", t, dict(event.payload))
        elif kind == "start":
            state = open_phase.get(key)
            args = state[2] if state else {}
            close(key, t)
            open_phase[key] = ("execute", t, args)
        elif kind == "complete":
            close(key, t)
        elif kind in ("requeue", "fault", "discard", "task-failed"):
            close(key, t)
            if kind in ("requeue",):
                open_phase[key] = ("queued", t, {})
        elif kind in ("retry", "fallback"):
            # Backoff elapsed: the task re-enters the queue now.
            open_phase[key] = ("queued", t, {})
        elif kind == "timeout" and event.payload.get("action") in ("requeue", "fail"):
            close(key, t)
        if kind in ANNOTATION_KINDS and key is not None:
            instants.append(Instant(_task_track(key), kind, t, dict(event.payload)))
    # Anything still open at the end of the stream (a run stopped at a
    # horizon) closes at the last event's timestamp.
    if events:
        horizon = events[-1].time
        for key in list(open_phase):
            close(key, horizon)
    spans.sort(key=lambda s: (s.track, s.start, TASK_PHASES.index(s.phase)
                              if s.phase in TASK_PHASES else 99))
    return spans, instants


def build_node_spans(events: list[TraceEvent]) -> list[Span]:
    """Fold slice-alloc/free pairs into fabric-region occupancy spans.

    One span per allocation, on a ``node N rpe R region G`` track,
    named for the hardware function resident during the occupancy (from
    the surrounding dispatch, when available).
    """
    spans: list[Span] = []
    #: (node, resource, region) -> (start, slices, function)
    live: dict[tuple, tuple[float, int, str]] = {}
    #: key -> function named by the latest dispatch (for span naming)
    last_function: dict[object, str] = {}
    for event in events:
        payload = event.payload
        if event.kind == "dispatch":
            last_function[event.key] = payload.get("function", "")
        elif event.kind == "slice-alloc":
            place = (payload["node"], payload["resource"], payload["region"])
            live[place] = (
                event.time,
                payload.get("slices", 0),
                last_function.get(event.key, ""),
            )
        elif event.kind == "slice-free":
            place = (payload["node"], payload["resource"], payload["region"])
            opened = live.pop(place, None)
            if opened is None:
                continue  # free without a seen alloc (trimmed trace)
            start, slices, function = opened
            spans.append(
                Span(
                    track=f"node {place[0]} rpe {place[1]} region {place[2]}",
                    phase="occupied",
                    start=start,
                    end=event.time,
                    name=function,
                    args={"slices": slices},
                )
            )
    if events:
        horizon = events[-1].time
        for place, (start, slices, function) in sorted(live.items(), key=repr):
            spans.append(
                Span(
                    track=f"node {place[0]} rpe {place[1]} region {place[2]}",
                    phase="occupied",
                    start=start,
                    end=horizon,
                    name=function,
                    args={"slices": slices},
                )
            )
    spans.sort(key=lambda s: (s.track, s.start))
    return spans


# ----------------------------------------------------------------------
# Chrome trace-event / Perfetto export
# ----------------------------------------------------------------------

#: Process ids in the exported trace: tasks vs. fabric occupancy.
TASKS_PID = 1
FABRIC_PID = 2


def to_chrome_trace(events: list[TraceEvent]) -> dict:
    """Render a trace as Chrome trace-event JSON (Perfetto-loadable).

    Simulated seconds map to trace microseconds.  Task tracks live in
    a ``tasks`` process (one thread per task), fabric-region occupancy
    in a ``fabric`` process (one thread per region); lifecycle phases
    are complete (``X``) events and annotations are instants (``i``).
    """
    task_spans, instants = build_task_spans(events)
    node_spans = build_node_spans(events)
    tids: dict[tuple[int, str], int] = {}
    trace_events: list[dict] = [
        {"ph": "M", "pid": TASKS_PID, "tid": 0, "name": "process_name",
         "args": {"name": "tasks"}},
        {"ph": "M", "pid": FABRIC_PID, "tid": 0, "name": "process_name",
         "args": {"name": "fabric"}},
    ]

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tids:
            tids[key] = sum(1 for existing in tids if existing[0] == pid) + 1
            trace_events.append(
                {"ph": "M", "pid": pid, "tid": tids[key], "name": "thread_name",
                 "args": {"name": track}}
            )
        return tids[key]

    def us(t: float) -> int:
        return round(t * 1e6)

    for span in task_spans:
        trace_events.append(
            {
                "ph": "X",
                "pid": TASKS_PID,
                "tid": tid_for(TASKS_PID, span.track),
                "name": span.phase,
                "cat": "task",
                "ts": us(span.start),
                "dur": max(1, us(span.end) - us(span.start)),
                "args": span.args,
            }
        )
    for instant in instants:
        trace_events.append(
            {
                "ph": "i",
                "pid": TASKS_PID,
                "tid": tid_for(TASKS_PID, instant.track),
                "name": instant.kind,
                "cat": "annotation",
                "s": "t",
                "ts": us(instant.time),
                "args": instant.args,
            }
        )
    for span in node_spans:
        trace_events.append(
            {
                "ph": "X",
                "pid": FABRIC_PID,
                "tid": tid_for(FABRIC_PID, span.track),
                "name": span.name or "occupied",
                "cat": "fabric",
                "ts": us(span.start),
                "dur": max(1, us(span.end) - us(span.start)),
                "args": span.args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, events: list[TraceEvent]) -> int:
    """Write the Perfetto/chrome://tracing JSON; returns event count."""
    trace = to_chrome_trace(events)
    Path(path).write_text(
        json.dumps(trace, sort_keys=True) + "\n", encoding="ascii"
    )
    return len(trace["traceEvents"])
