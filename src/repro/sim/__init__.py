"""DReAMSim: Dynamic Reconfigurable Autonomous Many-task Simulator.

Section V closes by introducing DReAMSim [20][21], the authors'
"simulation framework ... for the purpose of testing task scheduling
strategies and resource management for dynamic reconfigurable
processing nodes in a distributed environment", which "can be used to
investigate the desired system scenario(s) for a particular scheduling
strategy and a given number of tasks, grid nodes, configurations, task
arrival distributions, area ranges, and task required times".

This package is that simulator, rebuilt in Python:

* :mod:`repro.sim.engine` -- deterministic discrete-event core.
* :mod:`repro.sim.workload` -- task arrival distributions (Poisson /
  uniform / deterministic) and synthetic task generators parameterized
  by area ranges, required-time ranges, configuration pools, and PE mix.
* :mod:`repro.sim.metrics` -- per-task and per-resource metrics:
  wait/turnaround, utilization, reconfiguration counts, configuration
  reuse rate.
* :mod:`repro.sim.simulator` -- the DReAMSim facade wiring engine +
  RMS + JSS + workload, including application (Seq/Par) execution,
  task-graph execution, streaming pipelines, and node join/leave.
* :mod:`repro.sim.tracing` -- typed event stream (submit/dispatch/
  reconfigure/complete, node membership, slice occupancy) with
  pluggable sinks and an online invariant checker.
* :mod:`repro.sim.runner` -- parallel experiment execution across
  worker processes with spec-hash result caching.
"""

from repro.sim.engine import SimulationEngine, EventHandle
from repro.sim.workload import (
    ArrivalProcess,
    PoissonArrivals,
    UniformArrivals,
    DeterministicArrivals,
    TraceArrivals,
    ConfigurationPool,
    SyntheticWorkload,
    WorkloadSpec,
    independent_rng,
)
from repro.sim.metrics import MetricsCollector, SimulationReport, TaskMetrics
from repro.sim.energy import EnergyAuditor, EnergyReport
from repro.sim.faults import FAULT_PRESETS, FaultInjector, FaultSpec, RetryPolicy
from repro.sim.resilience import (
    RESILIENCE_PRESETS,
    CheckpointSpec,
    DeadlineSpec,
    ResilienceSpec,
    SpeculationSpec,
)
from repro.sim.trace import (
    export_report_json,
    export_task_records,
    export_trace,
    load_report_json,
    load_task_records,
)
from repro.sim.experiment import (
    ExperimentResult,
    ExperimentSpec,
    NodeSpec,
    ReplicationSummary,
    replicate,
    run_experiment,
    summarize_replications,
    sweep,
)
from repro.sim.runner import (
    ExperimentRunner,
    RunnerStats,
    parallel_map,
    parallel_replicate,
    parallel_sweep,
    run_many,
    spec_cache_key,
)
from repro.sim.simulator import DReAMSim
from repro.sim.tracing import (
    InMemorySink,
    InvariantViolation,
    JsonlSink,
    TraceEvent,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
    read_jsonl,
    verify_jsonl,
    verify_trace,
)

__all__ = [
    "SimulationEngine",
    "EventHandle",
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "DeterministicArrivals",
    "TraceArrivals",
    "ConfigurationPool",
    "SyntheticWorkload",
    "WorkloadSpec",
    "independent_rng",
    "MetricsCollector",
    "SimulationReport",
    "TaskMetrics",
    "EnergyAuditor",
    "EnergyReport",
    "FAULT_PRESETS",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "RESILIENCE_PRESETS",
    "ResilienceSpec",
    "DeadlineSpec",
    "CheckpointSpec",
    "SpeculationSpec",
    "export_report_json",
    "export_task_records",
    "export_trace",
    "load_report_json",
    "load_task_records",
    "DReAMSim",
    "ExperimentSpec",
    "ExperimentResult",
    "NodeSpec",
    "run_experiment",
    "sweep",
    "ReplicationSummary",
    "replicate",
    "summarize_replications",
    "ExperimentRunner",
    "RunnerStats",
    "parallel_map",
    "parallel_replicate",
    "parallel_sweep",
    "run_many",
    "spec_cache_key",
    "TraceEvent",
    "Tracer",
    "InMemorySink",
    "JsonlSink",
    "TraceInvariantChecker",
    "InvariantViolation",
    "canonical_events",
    "read_jsonl",
    "verify_trace",
    "verify_jsonl",
]
