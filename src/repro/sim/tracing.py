"""Structured simulator tracing: typed events, sinks, and invariants.
Event schema: ``submit`` / ``dispatch`` / ``start`` / ``reconfigure`` /
``complete`` / ``discard`` / ``requeue`` (task lifecycle, keyed by
``(job, task)``), ``node-join`` / ``node-leave`` (grid membership),
``slice-alloc`` / ``slice-free`` (fabric-region occupancy).  Checked
invariants: per-task causality, global time monotonicity, per-fabric
slice-capacity conservation, and configuration-reuse accounting.

The DReAMSim runs behind the paper's quantitative claims are only
trustworthy if their event streams can be audited.  This module gives
the simulator an observability layer:

* :class:`TraceEvent` -- one typed, timestamped event.  The simulator
  emits ``submit`` / ``dispatch`` / ``start`` / ``reconfigure`` /
  ``complete`` / ``discard`` / ``requeue`` for tasks, ``node-join`` /
  ``node-leave`` for grid membership, and ``slice-alloc`` /
  ``slice-free`` for fabric-region occupancy.
* :class:`Tracer` -- fan-out of events to pluggable sinks.
* :class:`InMemorySink` -- bounded (ring) or unbounded event list.
* :class:`JsonlSink` -- one JSON object per line; traces round-trip
  through :func:`read_jsonl` so stored baselines can be re-verified.
* :class:`TraceInvariantChecker` -- a sink that validates the stream
  *as it is produced*: per-task causality (dispatch after submit,
  start after dispatch, complete after start), global time
  monotonicity, slice-capacity conservation per fabric, and
  configuration-reuse accounting (a reuse hit must name a function
  actually resident in the chosen region, and pays zero
  reconfiguration time).

Event payloads deliberately exclude process-global identifiers
(bitstream ids, configuration ids): :func:`canonical_events` remaps the
remaining job-id component of task keys to dense indices, which makes
traces byte-stable across interpreter sessions -- the property the
golden-trace regression tests pin down.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

#: Every event kind the simulator emits, in no particular order.
EVENT_KINDS = frozenset(
    {
        "submit",
        "dispatch",
        "start",
        "reconfigure",
        "complete",
        "discard",
        "requeue",
        "node-join",
        "node-leave",
        "slice-alloc",
        "slice-free",
        # Fault-injection subsystem (sim/faults.py):
        "fault",        # a fault hit this task's placement
        "retry",        # post-backoff re-queue of a faulted task
        "fallback",     # re-queue degraded to GPP execution
        "task-failed",  # terminal failure (retry budget exhausted)
        "link-fault",   # a network link degraded or was severed
        "link-restore", # that link healed
        # Adaptive resilience layer (grid/health.py + sim/resilience.py):
        "quarantine",   # a node's circuit breaker opened/closed
        "probe",        # a probationary placement on a half-open node
        "timeout",      # the deadline watchdog fired for this task
        "checkpoint",   # a fabric task snapshotted its progress
        "migrate",      # a checkpointed task resumed on another node
        "speculate",    # replica lifecycle: launch / win / lose / abort
        # Overload protection (sim/admission.py):
        "admit",        # the admission controller accepted a submission
        "defer",        # backpressure: submission parked for re-offer
        "shed",         # load shedding: submission rejected, terminal
        "degrade",      # brownout forced a low-priority task onto GPP
        "brownout",     # brownout stage transition (escalate / recover)
        # Control-plane fault tolerance (sim/failover.py):
        "heartbeat-suspect",  # detector suspects a target (node / rms)
        "heartbeat-confirm",  # suspicion confirmed: target declared down
        "heartbeat-rejoin",   # a heartbeat (or rejoin) cleared suspicion
        "rms-crash",          # the primary RMS process died
        "rms-gray",           # the primary went gray (up but useless)
        "rms-restore",        # cold restart / gray recovery: plane back up
        "failover-begin",     # standby promotion started
        "failover-complete",  # standby promoted; control plane back up
        "lease-expire",       # a placement's lease lapsed while dark
        "orphan-recovered",   # orphaned placement torn down and re-queued
        # Online SLO monitoring (sim/slo.py):
        "slo-breach",         # an objective entered/left breach (action=)
        "slo-alert-fire",     # multi-window burn rate crossed the threshold
        "slo-alert-resolve",  # the burn subsided (or the horizon closed it)
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped simulator event.

    ``key`` identifies the task for task-lifecycle events (``None`` for
    grid-membership events); ``payload`` carries kind-specific fields
    (node ids, region ids, slice counts, timing decomposition...).
    """

    time: float
    kind: str
    key: object = None
    payload: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to one deterministic JSON line (sorted keys)."""
        record = {"t": self.time, "kind": self.kind, "key": _jsonable_key(self.key)}
        record.update(self.payload)
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        data = json.loads(line)
        time = data.pop("t")
        kind = data.pop("kind")
        key = _tuple_key(data.pop("key", None))
        return cls(time=time, kind=kind, key=key, payload=data)


def _jsonable_key(key: object) -> object:
    return list(key) if isinstance(key, tuple) else key


def _tuple_key(key: object) -> object:
    return tuple(key) if isinstance(key, list) else key


class TraceSink:
    """Receives events from a :class:`Tracer`.  Subclass and override."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; called by :meth:`Tracer.close`."""


class InMemorySink(TraceSink):
    """Keeps events in memory; ``capacity`` makes it a ring buffer."""

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.events: deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(TraceSink):
    """Streams events to a JSONL file, one object per line.

    Flushes every ``flush_every`` events (default 64) so a crashed or
    killed run still leaves a readable partial trace on disk; pass
    ``flush_every=None`` to defer entirely to the OS buffer.
    """

    def __init__(self, path: str | Path, *, flush_every: int | None = 64):
        if flush_every is not None and flush_every < 1:
            raise ValueError("flush_every must be >= 1 (or None)")
        self.path = Path(path)
        self.flush_every = flush_every
        self._fh = self.path.open("w", encoding="ascii")
        self.lines_written = 0

    def emit(self, event: TraceEvent) -> None:
        self._fh.write(event.to_json() + "\n")
        self.lines_written += 1
        if self.flush_every is not None and self.lines_written % self.flush_every == 0:
            self.flush()

    def flush(self) -> None:
        """Push buffered lines to disk (no-op once closed)."""
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a JSONL trace back into events (keys re-tupled)."""
    out = []
    with Path(path).open(encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TraceEvent.from_json(line))
    return out


def canonical_events(events: list[TraceEvent]) -> list[TraceEvent]:
    """Remap the job-id component of task keys to dense indices.

    JSS job ids come from a process-global counter, so the same seeded
    run yields shifted ids depending on what ran earlier in the
    process.  Canonicalization assigns each distinct job id its order
    of first appearance, making traces reproducible byte-for-byte.
    """
    mapping: dict[object, int] = {}
    out: list[TraceEvent] = []
    for event in events:
        key = event.key
        if isinstance(key, tuple) and key:
            job = key[0]
            if job not in mapping:
                mapping[job] = len(mapping)
            key = (mapping[job],) + key[1:]
        out.append(TraceEvent(time=event.time, kind=event.kind, key=key,
                              payload=event.payload))
    return out


class Tracer:
    """Fans simulator events out to sinks.

    The simulator calls :meth:`emit`; each sink sees every event in
    emission order.  A :class:`TraceInvariantChecker` is just another
    sink, so invariants can be validated online during the run.
    """

    def __init__(self, *sinks: TraceSink):
        self.sinks: list[TraceSink] = list(sinks)
        self.events_emitted = 0

    @classmethod
    def with_invariants(cls, *sinks: TraceSink) -> "Tracer":
        """A tracer whose first sink is a fresh invariant checker."""
        return cls(TraceInvariantChecker(), *sinks)

    @property
    def checker(self) -> "TraceInvariantChecker | None":
        for sink in self.sinks:
            if isinstance(sink, TraceInvariantChecker):
                return sink
        return None

    def add_sink(self, sink: TraceSink) -> None:
        self.sinks.append(sink)

    def emit(self, time: float, kind: str, key: object = None, **payload) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = TraceEvent(time=time, kind=kind, key=key, payload=payload)
        self.events_emitted += 1
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InvariantViolation(RuntimeError):
    """An event stream broke a simulator invariant."""


#: Task lifecycle states tracked by the checker.
_SUBMITTED = "submitted"
_DISPATCHED = "dispatched"
_STARTED = "started"
_COMPLETED = "completed"
_DISCARDED = "discarded"
_FAULTED = "faulted"   # placement lost to a fault; awaiting retry/failure
_FAILED = "failed"     # terminal: retry budget exhausted
_SHED = "shed"         # terminal: rejected by overload protection

#: States in which a task has terminated (exactly-once, never revisited).
_TERMINAL = frozenset({_COMPLETED, _DISCARDED, _FAILED, _SHED})


class TraceInvariantChecker(TraceSink):
    """Validates an event stream against the simulator's contracts.

    Raised violations name the offending event.  Checked invariants:

    * **Monotonic time** -- event timestamps never decrease.
    * **Task causality** -- ``submit`` -> ``dispatch`` -> ``start`` ->
      ``complete``; ``discard`` only before dispatch; ``requeue`` only
      after dispatch (and returns the task to the queue); no duplicate
      submits or transitions from terminal states.
    * **Slice conservation** -- a fabric region is allocated at most
      once at a time, allocated slices per (node, RPE) never exceed the
      device capacity, frees match their allocs, and a departing node
      has no live allocations left (its victims were requeued first).
    * **Reuse accounting** -- a dispatch flagged ``reused`` pays zero
      reconfiguration time and names a function previously placed (and
      not since evicted) in that exact region.
    * **Fault lifecycle** -- ``fault`` only hits a dispatched/started
      task; ``retry`` / ``fallback`` / ``task-failed`` only follow a
      fault; terminal states (completed / discarded / failed) are never
      left, which is what makes :meth:`assert_no_lost_tasks`'s
      exactly-once guarantee meaningful.  ``link-restore`` must pair
      with a live ``link-fault``.
    * **Quarantine** -- after a ``quarantine`` (phase ``open``) for a
      node, no ``dispatch`` may target that node until a ``probe``
      (the sanctioned half-open trickle) or a ``quarantine`` phase
      ``close`` lifts it: an open circuit breaker receives zero
      placements.
    * **Resilience lifecycle** -- ``checkpoint`` only while started;
      ``migrate`` only right after a dispatch; ``timeout`` transitions
      follow its ``action`` (``warn`` observes, ``requeue`` /``fail``
      tear the placement down like a fault does).
    * **Admission lifecycle** -- ``admit`` / ``defer`` / ``degrade``
      only touch a submitted (not yet dispatched) task; ``shed`` is a
      terminal transition from submitted; ``brownout`` carries a legal
      action and stage.
    * **Control-plane lifecycle** -- no ``dispatch`` while the control
      plane is dark (between ``rms-crash`` / ``rms-gray`` and the
      matching ``failover-complete`` / ``rms-restore``);
      ``failover-complete`` only follows ``failover-begin``;
      ``heartbeat-confirm`` / ``heartbeat-rejoin`` only resolve a live
      suspicion; ``orphan-recovered`` returns an in-flight task to the
      queue exactly like ``requeue`` does, keeping conservation intact.
    * **SLO lifecycle** -- ``slo-breach`` begin/end pairs per objective
      (no double begin, no unmatched end) and ``slo-alert-fire`` /
      ``slo-alert-resolve`` pairs likewise; after a finalized run
      :meth:`assert_slo_closed` requires everything closed.
    * **Task conservation** (online) -- at every point in the stream,
      ``completed + failed + discarded + shed <= submitted``; after a
      drained run :meth:`assert_conservation` requires equality, i.e.
      every submitted task terminated exactly once.
    """

    def __init__(self) -> None:
        self.events_checked = 0
        self._last_time = 0.0
        self._task_state: dict[object, str] = {}
        #: (node, resource) -> {region_id: allocated slices}
        self._alloc: dict[tuple[int, int], dict[int, int]] = {}
        #: (node, resource) -> device slice capacity
        self._capacity: dict[tuple[int, int], int] = {}
        #: (node, resource, region) -> resident hardware function
        self._resident: dict[tuple[int, int, int], str] = {}
        #: (site a, site b) pairs with a live, un-restored link fault
        self._degraded_links: set[tuple[int, int]] = set()
        #: Nodes whose circuit breaker is open (no dispatch allowed
        #: until a probe or a quarantine-close lifts the embargo).
        self._open_breakers: set[int] = set()
        #: Targets (node ids / "rms") under live heartbeat suspicion.
        self._suspected: set[object] = set()
        #: SLO objectives currently in breach (open slo-breach begin).
        self._slo_breaching: set[str] = set()
        #: SLO objectives with a firing (unresolved) burn-rate alert.
        self._slo_alerting: set[str] = set()
        #: Control-plane availability: ``"up"``, ``"gray"`` (the
        #: primary answers but is useless -- a crash may still
        #: *escalate* it), or ``"down"`` (crashed).  No dispatch may
        #: happen unless ``"up"``.
        self._cp_state = "up"
        self._failover_inflight = False
        # Online task-conservation ledger: every terminal transition
        # increments exactly one bucket, and the sum may never pass the
        # submit count (checked after every event in :meth:`emit`).
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.discarded = 0
        self.shed = 0

    # ------------------------------------------------------------------
    def _fail(self, event: TraceEvent, message: str) -> None:
        raise InvariantViolation(
            f"t={event.time:.6f} {event.kind} key={event.key!r}: {message}"
        )

    def _expect_state(self, event: TraceEvent, *allowed: str) -> str:
        state = self._task_state.get(event.key)
        if state not in allowed:
            self._fail(
                event,
                f"task is {state or 'unknown'}; expected one of {', '.join(allowed)}",
            )
        return state

    def emit(self, event: TraceEvent) -> None:
        if event.kind not in EVENT_KINDS:
            self._fail(event, "unknown event kind")
        if event.time < self._last_time - 1e-12:
            self._fail(
                event, f"time moved backwards (previous {self._last_time:.6f})"
            )
        self._last_time = max(self._last_time, event.time)
        handler = getattr(self, "_on_" + event.kind.replace("-", "_"), None)
        if handler is not None:
            handler(event)
        terminated = self.completed + self.failed + self.discarded + self.shed
        if terminated > self.submitted:
            self._fail(
                event,
                f"conservation violated: {terminated} terminations for "
                f"{self.submitted} submissions",
            )
        self.events_checked += 1

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def _on_submit(self, event: TraceEvent) -> None:
        if event.key in self._task_state:
            self._fail(event, "duplicate submit")
        self._task_state[event.key] = _SUBMITTED
        self.submitted += 1

    def _on_dispatch(self, event: TraceEvent) -> None:
        self._expect_state(event, _SUBMITTED)
        self._task_state[event.key] = _DISPATCHED
        payload = event.payload
        if self._cp_state != "up":
            self._fail(event, "dispatch while the control plane is down")
        if payload.get("node") in self._open_breakers:
            self._fail(
                event,
                f"dispatch to node {payload.get('node')} whose circuit "
                "breaker is open (quarantined)",
            )
        reused = payload.get("reused", False)
        if reused and payload.get("reconfig_time", 0.0) > 0.0:
            self._fail(event, "configuration reuse must pay zero reconfiguration")
        if payload.get("pe_kind") == "RPE":
            place = (payload.get("node"), payload.get("resource"), payload.get("region"))
            function = payload.get("function", "")
            if reused:
                resident = self._resident.get(place)
                if resident != function:
                    self._fail(
                        event,
                        f"reuse of {function!r} but region {place} holds {resident!r}",
                    )
            elif function:
                self._resident[place] = function

    def _on_start(self, event: TraceEvent) -> None:
        self._expect_state(event, _DISPATCHED)
        self._task_state[event.key] = _STARTED

    def _on_complete(self, event: TraceEvent) -> None:
        self._expect_state(event, _STARTED)
        self._task_state[event.key] = _COMPLETED
        self.completed += 1

    def _on_discard(self, event: TraceEvent) -> None:
        # FAULTED is allowed: a task abandoned while awaiting retry.
        self._expect_state(event, _SUBMITTED, _FAULTED)
        self._task_state[event.key] = _DISCARDED
        self.discarded += 1

    def _on_requeue(self, event: TraceEvent) -> None:
        self._expect_state(event, _DISPATCHED, _STARTED)
        self._task_state[event.key] = _SUBMITTED

    # ------------------------------------------------------------------
    # Fault / recovery lifecycle
    # ------------------------------------------------------------------
    def _on_fault(self, event: TraceEvent) -> None:
        self._expect_state(event, _DISPATCHED, _STARTED)
        self._task_state[event.key] = _FAULTED

    def _on_retry(self, event: TraceEvent) -> None:
        self._expect_state(event, _FAULTED)
        self._task_state[event.key] = _SUBMITTED

    def _on_fallback(self, event: TraceEvent) -> None:
        self._expect_state(event, _FAULTED)
        self._task_state[event.key] = _SUBMITTED

    def _on_task_failed(self, event: TraceEvent) -> None:
        self._expect_state(event, _FAULTED)
        self._task_state[event.key] = _FAILED
        self.failed += 1

    # ------------------------------------------------------------------
    # Overload protection lifecycle
    # ------------------------------------------------------------------
    def _on_admit(self, event: TraceEvent) -> None:
        self._expect_state(event, _SUBMITTED)

    def _on_defer(self, event: TraceEvent) -> None:
        self._expect_state(event, _SUBMITTED)

    def _on_shed(self, event: TraceEvent) -> None:
        self._expect_state(event, _SUBMITTED)
        self._task_state[event.key] = _SHED
        self.shed += 1

    def _on_degrade(self, event: TraceEvent) -> None:
        # Brownout stage 2 rewrites the exec requirement of a pending
        # (never dispatched) task; it stays submitted.
        self._expect_state(event, _SUBMITTED)

    def _on_brownout(self, event: TraceEvent) -> None:
        action = event.payload.get("action")
        if action not in ("escalate", "recover"):
            self._fail(event, f"unknown brownout action {action!r}")
        stage = event.payload.get("stage")
        if not isinstance(stage, int) or stage < 0:
            self._fail(event, f"brownout stage {stage!r} is not a stage index")

    # ------------------------------------------------------------------
    # Control-plane fault-tolerance lifecycle
    # ------------------------------------------------------------------
    def _on_heartbeat_suspect(self, event: TraceEvent) -> None:
        target = event.payload.get("target")
        if target in self._suspected:
            self._fail(event, f"target {target!r} is already suspected")
        self._suspected.add(target)

    def _on_heartbeat_confirm(self, event: TraceEvent) -> None:
        target = event.payload.get("target")
        if target not in self._suspected:
            self._fail(event, f"confirming target {target!r} that is not suspected")
        self._suspected.discard(target)

    def _on_heartbeat_rejoin(self, event: TraceEvent) -> None:
        target = event.payload.get("target")
        if target not in self._suspected:
            self._fail(event, f"rejoin of target {target!r} that is not suspected")
        self._suspected.discard(target)

    def _on_rms_crash(self, event: TraceEvent) -> None:
        # A crash from "gray" is a legitimate escalation: the useless
        # primary finally dies.  Only crash-while-crashed is absurd.
        if self._cp_state == "down":
            self._fail(event, "rms-crash while the control plane is already down")
        self._cp_state = "down"

    def _on_rms_gray(self, event: TraceEvent) -> None:
        if self._cp_state != "up":
            self._fail(event, "rms-gray while the control plane is already dark")
        self._cp_state = "gray"

    def _on_rms_restore(self, event: TraceEvent) -> None:
        if self._cp_state == "up":
            self._fail(event, "rms-restore with the control plane already up")
        self._cp_state = "up"
        self._failover_inflight = False

    def _on_failover_begin(self, event: TraceEvent) -> None:
        if self._cp_state == "up":
            self._fail(event, "failover-begin with the control plane up")
        if self._failover_inflight:
            self._fail(event, "failover already in flight")
        self._failover_inflight = True

    def _on_failover_complete(self, event: TraceEvent) -> None:
        if not self._failover_inflight:
            self._fail(event, "failover-complete without failover-begin")
        self._cp_state = "up"
        self._failover_inflight = False

    def _on_lease_expire(self, event: TraceEvent) -> None:
        # The lease lapses while the placement is still in flight;
        # orphan-recovered follows and does the state transition.
        self._expect_state(event, _DISPATCHED, _STARTED)

    def _on_orphan_recovered(self, event: TraceEvent) -> None:
        # Exactly the requeue transition: the in-flight placement is
        # torn down and the task goes back to the queue, so the
        # conservation ledger never loses it.
        self._expect_state(event, _DISPATCHED, _STARTED)
        self._task_state[event.key] = _SUBMITTED

    # ------------------------------------------------------------------
    # Online SLO monitoring lifecycle
    # ------------------------------------------------------------------
    def _on_slo_breach(self, event: TraceEvent) -> None:
        objective = event.payload.get("objective")
        if not objective:
            self._fail(event, "slo-breach without an objective name")
        action = event.payload.get("action")
        if action == "begin":
            if objective in self._slo_breaching:
                self._fail(event, f"objective {objective!r} is already in breach")
            self._slo_breaching.add(objective)
        elif action == "end":
            if objective not in self._slo_breaching:
                self._fail(
                    event, f"breach end for {objective!r} without a begin"
                )
            self._slo_breaching.discard(objective)
        else:
            self._fail(event, f"unknown slo-breach action {action!r}")

    def _on_slo_alert_fire(self, event: TraceEvent) -> None:
        objective = event.payload.get("objective")
        if not objective:
            self._fail(event, "slo-alert-fire without an objective name")
        if objective in self._slo_alerting:
            self._fail(event, f"alert for {objective!r} is already firing")
        self._slo_alerting.add(objective)

    def _on_slo_alert_resolve(self, event: TraceEvent) -> None:
        objective = event.payload.get("objective")
        if objective not in self._slo_alerting:
            self._fail(
                event, f"alert resolve for {objective!r} without a fire"
            )
        self._slo_alerting.discard(objective)

    # ------------------------------------------------------------------
    # Adaptive resilience lifecycle
    # ------------------------------------------------------------------
    def _on_quarantine(self, event: TraceEvent) -> None:
        node = event.payload.get("node")
        phase = event.payload.get("phase")
        if phase == "open":
            # Re-adding is legal: a failed probe re-opens the breaker.
            self._open_breakers.add(node)
        elif phase == "close":
            # The node may already have been lifted by a probe.
            self._open_breakers.discard(node)
        else:
            self._fail(event, f"unknown quarantine phase {phase!r}")

    def _on_probe(self, event: TraceEvent) -> None:
        # A probe is the sanctioned half-open trickle: it lifts the
        # dispatch embargo for the placement that follows it.
        self._open_breakers.discard(event.payload.get("node"))

    def _on_timeout(self, event: TraceEvent) -> None:
        action = event.payload.get("action")
        if action == "warn":
            self._expect_state(event, _SUBMITTED, _DISPATCHED, _STARTED, _FAULTED)
        elif action == "requeue":
            # The watchdog tore down a live placement; the task re-enters
            # the retry machinery exactly like a faulted one.
            self._expect_state(event, _DISPATCHED, _STARTED)
            self._task_state[event.key] = _FAULTED
        elif action == "fail":
            # Hard deadline: placement (if any) torn down, terminal
            # failure (``task-failed``) follows.
            self._expect_state(event, _SUBMITTED, _DISPATCHED, _STARTED, _FAULTED)
            self._task_state[event.key] = _FAULTED
        else:
            self._fail(event, f"unknown timeout action {action!r}")

    def _on_checkpoint(self, event: TraceEvent) -> None:
        self._expect_state(event, _STARTED)
        frac = event.payload.get("frac", 0.0)
        if not 0.0 < frac < 1.0:
            self._fail(event, f"checkpoint fraction {frac!r} outside (0, 1)")

    def _on_migrate(self, event: TraceEvent) -> None:
        # Emitted immediately after the resumed task's dispatch.
        self._expect_state(event, _DISPATCHED)

    def _on_speculate(self, event: TraceEvent) -> None:
        action = event.payload.get("action")
        if action == "launch":
            self._expect_state(event, _DISPATCHED, _STARTED)
        elif action == "win":
            self._expect_state(event, _DISPATCHED, _STARTED)
        elif action in ("lose", "abort"):
            if event.key not in self._task_state:
                self._fail(event, "replica event for an unknown task")
        else:
            self._fail(event, f"unknown speculate action {action!r}")

    def _on_link_fault(self, event: TraceEvent) -> None:
        pair = (event.payload.get("a"), event.payload.get("b"))
        if pair in self._degraded_links:
            self._fail(event, f"link {pair} already has an unresolved fault")
        self._degraded_links.add(pair)

    def _on_link_restore(self, event: TraceEvent) -> None:
        pair = (event.payload.get("a"), event.payload.get("b"))
        if pair not in self._degraded_links:
            self._fail(event, f"restoring link {pair} that has no live fault")
        self._degraded_links.remove(pair)

    # ------------------------------------------------------------------
    # Slice conservation
    # ------------------------------------------------------------------
    def _on_slice_alloc(self, event: TraceEvent) -> None:
        payload = event.payload
        pe = (payload["node"], payload["resource"])
        region = payload["region"]
        slices = payload["slices"]
        capacity = payload["capacity"]
        if slices <= 0 or capacity <= 0:
            self._fail(event, "slice counts must be positive")
        known = self._capacity.setdefault(pe, capacity)
        if known != capacity:
            self._fail(event, f"capacity changed from {known} to {capacity}")
        allocations = self._alloc.setdefault(pe, {})
        if region in allocations:
            self._fail(event, f"region {region} is already allocated")
        if sum(allocations.values()) + slices > capacity:
            self._fail(
                event,
                f"allocating {slices} slices exceeds capacity {capacity} "
                f"(already {sum(allocations.values())} in use)",
            )
        allocations[region] = slices

    def _on_slice_free(self, event: TraceEvent) -> None:
        payload = event.payload
        pe = (payload["node"], payload["resource"])
        region = payload["region"]
        allocations = self._alloc.get(pe, {})
        if region not in allocations:
            self._fail(event, f"freeing region {region} that is not allocated")
        if allocations[region] != payload["slices"]:
            self._fail(
                event,
                f"free of {payload['slices']} slices does not match "
                f"allocation of {allocations[region]}",
            )
        del allocations[region]

    # ------------------------------------------------------------------
    # Grid membership
    # ------------------------------------------------------------------
    def _on_node_leave(self, event: TraceEvent) -> None:
        node_id = event.payload["node"]
        for (node, resource), allocations in self._alloc.items():
            if node == node_id and allocations:
                self._fail(
                    event,
                    f"node leaves with regions {sorted(allocations)} of "
                    f"resource {resource} still allocated",
                )
        self._alloc = {pe: a for pe, a in self._alloc.items() if pe[0] != node_id}
        self._capacity = {pe: c for pe, c in self._capacity.items() if pe[0] != node_id}
        self._resident = {
            place: fn for place, fn in self._resident.items() if place[0] != node_id
        }

    # ------------------------------------------------------------------
    # Summary helpers
    # ------------------------------------------------------------------
    @property
    def live_allocations(self) -> int:
        return sum(len(a) for a in self._alloc.values())

    def assert_quiescent(self) -> None:
        """After a fully drained run: no region is still allocated and
        no task is stuck between dispatch and completion (or mid-fault
        recovery)."""
        if self.live_allocations:
            raise InvariantViolation(
                f"{self.live_allocations} fabric region(s) still allocated"
            )
        stuck = [
            key
            for key, state in self._task_state.items()
            if state in (_DISPATCHED, _STARTED, _FAULTED)
        ]
        if stuck:
            raise InvariantViolation(f"tasks stuck mid-flight: {stuck!r}")

    def assert_no_lost_tasks(self) -> None:
        """The fault-tolerance contract: every submitted task terminated
        exactly once -- as completed, failed, or discarded -- no matter
        what faults hit it, and no matter how the resilience layer moved
        it around (quarantine deferrals, watchdog timeouts, checkpoint
        migrations, speculative replicas).  (Exactly-once is enforced
        online: the state machine rejects any transition out of a
        terminal state, and replica events never create a second
        lifecycle for a task.)  Call after a fully drained run.
        """
        lost = sorted(
            (key for key, state in self._task_state.items() if state not in _TERMINAL),
            key=repr,
        )
        if lost:
            states = {key: self._task_state[key] for key in lost}
            raise InvariantViolation(f"tasks lost (non-terminal at end): {states!r}")

    def assert_slo_closed(self) -> None:
        """After a finalized run: every ``slo-breach`` begin has a
        matching end and every ``slo-alert-fire`` a matching resolve
        (the monitor's :meth:`~repro.sim.slo.SLOMonitor.finalize`
        closes anything still open at the horizon).  (The no-duplicate
        / no-unmatched direction is enforced online per event.)"""
        if self._slo_breaching:
            raise InvariantViolation(
                f"objectives still in breach at end of trace: "
                f"{sorted(self._slo_breaching)!r}"
            )
        if self._slo_alerting:
            raise InvariantViolation(
                f"alerts still firing at end of trace: "
                f"{sorted(self._slo_alerting)!r}"
            )

    def conservation(self) -> dict[str, int]:
        """The online task-conservation ledger as a dict."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "discarded": self.discarded,
            "shed": self.shed,
        }

    def assert_conservation(self) -> None:
        """After a fully drained run: submitted == completed + failed +
        discarded + shed -- the overload-protection contract that no
        submission is silently dropped, whatever mix of faults,
        deferrals, brownout stages, and shedding the run saw.  (The
        ``<=`` direction is enforced online after every event.)
        """
        terminated = self.completed + self.failed + self.discarded + self.shed
        if terminated != self.submitted:
            raise InvariantViolation(
                "conservation violated at end of run: "
                f"{self.conservation()!r} leaves "
                f"{self.submitted - terminated} task(s) unaccounted for"
            )


def verify_trace(events: list[TraceEvent]) -> int:
    """Run a fresh checker over *events*; returns the count checked.

    Raises :class:`InvariantViolation` on the first broken invariant.
    """
    checker = TraceInvariantChecker()
    for event in events:
        checker.emit(event)
    return checker.events_checked


def verify_jsonl(path: str | Path) -> int:
    """Validate a stored JSONL trace file."""
    return verify_trace(read_jsonl(path))
