"""Online SLO monitoring: declarative objectives, burn-rate alerts.

Everything observability gave the simulator so far is retrospective --
telemetry series, phase ledgers, bench diffs all explain a run after it
ends.  This module evaluates *service-level objectives* while the run
is still going: a declarative :class:`SLOSpec` names objectives
(latency percentile, throughput floor, availability, queue-depth
bound; global or scoped to one tenant / priority class) and an
:class:`SLOMonitor` folds the simulator's completion/shed/fail
observations through sliding sim-time windows, tracking breach
intervals and SRE-style multi-window burn-rate alerts.

Determinism contract (same as telemetry): the monitor is purely
observational.  It schedules no engine events, draws no randomness and
mutates no simulator state, so an SLO-monitored run replays the
committed goldens byte-identically once its own ``slo-*`` events are
filtered out -- and with ``slo=None`` every simulator hook is a single
attribute check (the zero-cost-when-disabled idiom shared with
resilience/admission/failover).

Key semantics:

* An objective is **in breach** while its windowed value violates the
  target (p-percentile latency above target, windowed throughput below
  the floor, windowed success fraction below target, queue depth above
  the bound).  Breach state changes only at observation points --
  completions, errors, queue samples, and the horizon -- and every
  transition is a first-class ``slo-breach`` trace event
  (``action="begin"`` / ``"end"``).
* **Attainment** is ``1 - breach_seconds / horizon`` (clamped to
  [0, 1]); the **error budget** is the ``budget_fraction`` of the
  horizon the objective is allowed to spend in breach.  An objective is
  **violated** when the budget is exhausted (breach fraction exceeds
  ``budget_fraction``) -- this is what ``repro slo`` turns into an exit
  code.
* **Burn rate** over a lookback window ``w`` is
  ``(breach seconds in w) / w / budget_fraction`` -- burn 1.0 spends
  the budget exactly at sustainable speed.  An alert fires when *both*
  the fast (5% of ``window_s``) and slow (1x ``window_s``) windows burn
  at or above ``burn_threshold``, and resolves hysteretically when both
  fall below half of it.  :meth:`SLOMonitor.finalize` closes open
  breaches and resolves firing alerts at the horizon, so every
  ``slo-alert-fire`` in a complete trace has a matching resolve (the
  online checker invariant in :mod:`repro.sim.tracing`).

:func:`evaluate_trace` replays the same monitor over a recorded JSONL
trace (``repro slo`` on a file), reconstructing observations from
``submit`` / ``complete`` / ``shed`` / ``task-failed`` events and the
queue-membership transitions, so live and post-hoc evaluation share one
implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable

__all__ = [
    "OBJECTIVE_KINDS",
    "SLOObjective",
    "SLOSpec",
    "SLOResult",
    "SLOMonitor",
    "SLO_PRESETS",
    "parse_objective",
    "parse_slo",
    "evaluate_trace",
]

#: The supported objective kinds.
OBJECTIVE_KINDS = ("latency", "throughput", "availability", "queue-depth")

#: Latency metrics an objective may target.
LATENCY_METRICS = ("turnaround", "wait")

#: Fast burn window as a fraction of the objective's window
#: (the SRE multi-window pairing: 5%-of-window + 1x-window).
FAST_WINDOW_FRACTION = 0.05

#: Hysteresis: a firing alert resolves when both burn rates fall
#: below ``burn_threshold * RESOLVE_FRACTION``.
RESOLVE_FRACTION = 0.5


@dataclass(frozen=True)
class SLOObjective:
    """One declarative objective.

    ``kind`` selects the evaluator:

    * ``"latency"`` -- the ``percentile`` of ``metric`` (turnaround or
      wait) over completions in the sliding window must be <= ``target``
      seconds.
    * ``"throughput"`` -- completions per second over the window must
      be >= ``target`` (evaluated only once a full window has elapsed,
      so a cold start is not a breach).
    * ``"availability"`` -- the success fraction
      ``completed / (completed + shed + failed)`` over the window must
      be >= ``target``.
    * ``"queue-depth"`` -- the pending-queue depth must be <= ``target``.

    ``tenant`` / ``priority`` scope the objective to matching tasks
    (empty / ``None`` = global).  ``budget_fraction`` is the error
    budget: the fraction of the run the objective may spend in breach
    before it counts as violated.
    """

    kind: str
    target: float
    name: str = ""
    metric: str = "turnaround"
    percentile: float = 95.0
    window_s: float = 30.0
    tenant: str = ""
    priority: int | None = None
    budget_fraction: float = 0.05
    burn_threshold: float = 1.0

    def __post_init__(self):
        if self.kind not in OBJECTIVE_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r} (expected one of "
                f"{', '.join(OBJECTIVE_KINDS)})"
            )
        if self.metric not in LATENCY_METRICS:
            raise ValueError(
                f"unknown latency metric {self.metric!r} "
                f"(expected one of {', '.join(LATENCY_METRICS)})"
            )
        if self.target < 0:
            raise ValueError("SLO target must be non-negative")
        if self.kind == "availability" and not 0.0 < self.target <= 1.0:
            raise ValueError("availability target must be in (0, 1]")
        if not 0.0 < self.percentile < 100.0:
            raise ValueError("percentile must be in (0, 100)")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in (0, 1]")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")
        if not self.name:
            object.__setattr__(self, "name", self._auto_name())

    def _auto_name(self) -> str:
        if self.kind == "latency":
            base = f"{self.metric}-p{self.percentile:g}"
        elif self.kind == "throughput":
            base = "throughput"
        elif self.kind == "availability":
            base = "availability"
        else:
            base = "queue-depth"
        if self.tenant:
            base += f"@{self.tenant}"
        if self.priority is not None:
            base += f"@prio{self.priority}"
        return base

    @property
    def scope(self) -> str:
        """Human-readable scope label (``global`` or the filter)."""
        parts = []
        if self.tenant:
            parts.append(self.tenant)
        if self.priority is not None:
            parts.append(f"priority={self.priority}")
        return ",".join(parts) or "global"

    def matches(self, tenant: str, priority: int) -> bool:
        if self.tenant and tenant != self.tenant:
            return False
        if self.priority is not None and priority != self.priority:
            return False
        return True

    def describe(self) -> dict:
        """JSON-safe self-description (telemetry meta / provenance)."""
        return {k: v for k, v in asdict(self).items() if v not in (None, "")}


@dataclass(frozen=True)
class SLOSpec:
    """The declarative SLO contract of one run: a tuple of objectives.

    An empty spec normalizes to ``None`` inside the simulator (the
    zero-cost contract shared with :class:`~repro.sim.admission.AdmissionSpec`).
    """

    objectives: tuple[SLOObjective, ...] = ()

    def __post_init__(self):
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(
                f"duplicate objective names in SLOSpec: {names} -- give "
                "clashing objectives explicit name= labels"
            )

    @property
    def enabled(self) -> bool:
        return bool(self.objectives)

    def describe(self) -> dict:
        return {"objectives": [o.describe() for o in self.objectives]}


#: Ready-made contracts for the CLI (``--slo default`` etc.).
SLO_PRESETS: dict[str, SLOSpec] = {
    # A serving-style contract: tail turnaround, availability, and a
    # bounded queue.  Generous enough that the canonical reference
    # experiment attains it.
    "default": SLOSpec(objectives=(
        SLOObjective(kind="latency", target=10.0, percentile=95.0),
        SLOObjective(kind="availability", target=0.95),
        SLOObjective(kind="queue-depth", target=64.0),
    )),
    # A tight contract that overload / chaos scenarios visibly burn
    # through -- useful for exercising alerts and the CI gate.
    "strict": SLOSpec(objectives=(
        SLOObjective(kind="latency", target=2.0, percentile=95.0,
                     window_s=10.0, budget_fraction=0.02),
        SLOObjective(kind="availability", target=0.999, window_s=10.0,
                     budget_fraction=0.02),
        SLOObjective(kind="queue-depth", target=16.0, budget_fraction=0.02),
    )),
}


def parse_objective(text: str) -> SLOObjective:
    """Parse one CLI objective: ``[name=]kind:target[:window][:tenant]``.

    ``kind`` is one of ``latency-pNN`` (turnaround percentile),
    ``wait-pNN`` (queueing-delay percentile), ``throughput``,
    ``availability``, or ``queue``.  Examples::

        latency-p95:2.0
        gold=latency-p99:5.0:60:tenant0
        availability:0.99:30
        queue:64
    """
    name = ""
    if "=" in text:
        name, text = text.split("=", 1)
    parts = text.split(":")
    if len(parts) < 2 or len(parts) > 4:
        raise ValueError(
            f"bad objective {text!r}: expected "
            "[name=]kind:target[:window][:tenant]"
        )
    kind_text = parts[0].strip().lower()
    try:
        target = float(parts[1])
    except ValueError:
        raise ValueError(f"bad objective target {parts[1]!r}") from None
    window_s = 30.0
    if len(parts) >= 3 and parts[2]:
        try:
            window_s = float(parts[2])
        except ValueError:
            raise ValueError(f"bad objective window {parts[2]!r}") from None
    tenant = parts[3].strip() if len(parts) == 4 else ""
    common = dict(name=name, target=target, window_s=window_s, tenant=tenant)
    if kind_text.startswith(("latency-p", "wait-p")):
        metric, _, ptext = kind_text.partition("-p")
        metric = "turnaround" if metric == "latency" else "wait"
        try:
            percentile = float(ptext)
        except ValueError:
            raise ValueError(f"bad percentile in {kind_text!r}") from None
        return SLOObjective(kind="latency", metric=metric,
                            percentile=percentile, **common)
    if kind_text == "throughput":
        return SLOObjective(kind="throughput", **common)
    if kind_text == "availability":
        return SLOObjective(kind="availability", **common)
    if kind_text == "queue":
        return SLOObjective(kind="queue-depth", **common)
    raise ValueError(
        f"unknown objective kind {kind_text!r} (expected latency-pNN, "
        "wait-pNN, throughput, availability, or queue)"
    )


def parse_slo(values: list[str] | None) -> SLOSpec | None:
    """CLI helper: preset name or repeatable objective strings."""
    if not values:
        return None
    if len(values) == 1 and values[0] in SLO_PRESETS:
        return SLO_PRESETS[values[0]]
    return SLOSpec(objectives=tuple(parse_objective(v) for v in values))


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default method) over a
    small window, without paying array construction per observation."""
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * (q / 100.0)
    lo = int(rank)
    frac = rank - lo
    if lo + 1 >= len(data):
        return data[-1]
    return data[lo] + (data[lo + 1] - data[lo]) * frac


@dataclass
class SLOResult:
    """One objective's end-of-run verdict."""

    name: str
    kind: str
    scope: str
    target: float
    window_s: float
    budget_fraction: float
    observations: int
    breach_count: int
    breach_seconds: float
    attainment: float
    error_budget_remaining: float
    alerts_fired: int
    alerts_resolved: int
    violated: bool

    def to_json(self) -> dict:
        return dict(vars(self))


class _ObjectiveState:
    """Per-objective sliding-window state inside the monitor."""

    __slots__ = (
        "obj", "samples", "depth", "in_breach", "breach_started",
        "recent", "breach_seconds", "breach_count", "alert_firing",
        "alerts_fired", "alerts_resolved", "observations",
    )

    def __init__(self, obj: SLOObjective):
        self.obj = obj
        #: latency: (t, value); availability: (t, ok); throughput: t.
        self.samples: deque = deque()
        self.depth = 0.0
        self.in_breach = False
        self.breach_started = 0.0
        #: Closed breach intervals still inside the slow burn window.
        self.recent: deque[tuple[float, float]] = deque()
        self.breach_seconds = 0.0
        self.breach_count = 0
        self.alert_firing = False
        self.alerts_fired = 0
        self.alerts_resolved = 0
        self.observations = 0

    # -- window evaluation ---------------------------------------------
    def _prune(self, now: float) -> None:
        horizon = now - self.obj.window_s
        samples = self.samples
        if self.obj.kind == "throughput":
            while samples and samples[0] <= horizon:
                samples.popleft()
        else:
            while samples and samples[0][0] <= horizon:
                samples.popleft()
        recent_horizon = now - self.obj.window_s
        while self.recent and self.recent[0][1] <= recent_horizon:
            self.recent.popleft()

    def current_value(self, now: float) -> float | None:
        """The windowed value the target is compared against, or
        ``None`` when the window holds nothing to judge."""
        obj = self.obj
        if obj.kind == "latency":
            if not self.samples:
                return None
            return _percentile([v for _, v in self.samples], obj.percentile)
        if obj.kind == "throughput":
            if now < obj.window_s:
                return None  # cold start: no full window yet
            return len(self.samples) / obj.window_s
        if obj.kind == "availability":
            if not self.samples:
                return None
            ok = sum(1 for _, good in self.samples if good)
            return ok / len(self.samples)
        return self.depth

    def breaching(self, now: float) -> tuple[bool, float | None]:
        value = self.current_value(now)
        if value is None:
            return False, None
        obj = self.obj
        if obj.kind in ("throughput", "availability"):
            return value < obj.target, value
        return value > obj.target, value

    # -- burn rate ------------------------------------------------------
    def breach_overlap(self, a: float, b: float) -> float:
        """Breach seconds inside ``[a, b]`` (recent intervals + open)."""
        if b <= a:
            return 0.0
        total = 0.0
        for t0, t1 in self.recent:
            lo, hi = max(a, t0), min(b, t1)
            if hi > lo:
                total += hi - lo
        if self.in_breach:
            lo = max(a, self.breach_started)
            if b > lo:
                total += b - lo
        return total

    def burn_rates(self, now: float) -> tuple[float, float]:
        obj = self.obj
        slow_w = obj.window_s
        fast_w = max(slow_w * FAST_WINDOW_FRACTION, 1e-9)
        fast = self.breach_overlap(now - fast_w, now) / fast_w
        slow = self.breach_overlap(now - slow_w, now) / slow_w
        return fast / obj.budget_fraction, slow / obj.budget_fraction


class SLOMonitor:
    """Evaluates an :class:`SLOSpec` online against a run's observations.

    The simulator feeds :meth:`observe_completion`,
    :meth:`observe_error` and :meth:`observe_queue` from its completion
    / shed / fail / dispatch paths; :meth:`finalize` runs once at the
    horizon.  ``emit`` (the simulator's ``_emit``) receives the
    first-class ``slo-breach`` / ``slo-alert-fire`` /
    ``slo-alert-resolve`` events; ``clock`` reads simulated seconds.
    """

    def __init__(
        self,
        spec: SLOSpec,
        *,
        clock: Callable[[], float],
        emit: Callable | None = None,
    ):
        self.spec = spec
        self.clock = clock
        self.emit = emit
        self._states = [_ObjectiveState(o) for o in spec.objectives]
        self._any_queue = any(
            o.kind == "queue-depth" for o in spec.objectives
        )
        self.finalized = False

    # -- observation hooks ---------------------------------------------
    def observe_completion(
        self, *, tenant: str = "", priority: int = 0,
        wait: float | None = None, turnaround: float = 0.0,
    ) -> None:
        now = self.clock()
        for state in self._states:
            obj = state.obj
            if obj.kind == "queue-depth" or not obj.matches(tenant, priority):
                continue
            state.observations += 1
            if obj.kind == "latency":
                value = turnaround if obj.metric == "turnaround" else wait
                if value is not None:
                    state.samples.append((now, value))
            elif obj.kind == "throughput":
                state.samples.append(now)
            else:  # availability
                state.samples.append((now, True))
        self._evaluate_all(now)

    def observe_error(self, *, tenant: str = "", priority: int = 0) -> None:
        """A shed or terminally failed task (an availability error)."""
        now = self.clock()
        for state in self._states:
            obj = state.obj
            if obj.kind != "availability" or not obj.matches(tenant, priority):
                continue
            state.observations += 1
            state.samples.append((now, False))
        self._evaluate_all(now)

    def observe_queue(self, depth: int) -> None:
        """Pending-queue depth after a queue transition (global scope:
        the queue is one shared resource)."""
        if not self._any_queue:
            return
        now = self.clock()
        for state in self._states:
            if state.obj.kind != "queue-depth":
                continue
            if float(depth) != state.depth:
                state.observations += 1
                state.depth = float(depth)
        self._evaluate_all(now)

    # -- evaluation -----------------------------------------------------
    def _evaluate_all(self, now: float) -> None:
        for state in self._states:
            self._evaluate(state, now)

    def _evaluate(self, state: _ObjectiveState, now: float) -> None:
        state._prune(now)
        breach, value = state.breaching(now)
        obj = state.obj
        if breach and not state.in_breach:
            state.in_breach = True
            state.breach_started = now
            state.breach_count += 1
            self._emit_event(
                "slo-breach", objective=obj.name, action="begin",
                slo_kind=obj.kind, value=value, target=obj.target,
            )
        elif not breach and state.in_breach:
            self._close_breach(state, now, value=value)
        fast, slow = state.burn_rates(now)
        threshold = obj.burn_threshold
        if not state.alert_firing:
            if fast >= threshold and slow >= threshold:
                state.alert_firing = True
                state.alerts_fired += 1
                self._emit_event(
                    "slo-alert-fire", objective=obj.name,
                    fast_burn=fast, slow_burn=slow, threshold=threshold,
                )
        elif (
            fast < threshold * RESOLVE_FRACTION
            and slow < threshold * RESOLVE_FRACTION
        ):
            self._resolve_alert(state, fast=fast, slow=slow)

    def _close_breach(self, state: _ObjectiveState, now: float,
                      value: float | None = None) -> None:
        duration = now - state.breach_started
        state.in_breach = False
        state.recent.append((state.breach_started, now))
        state.breach_seconds += duration
        payload = dict(objective=state.obj.name, action="end",
                       duration=duration)
        if value is not None:
            payload["value"] = value
        self._emit_event("slo-breach", **payload)

    def _resolve_alert(self, state: _ObjectiveState, *, fast: float,
                       slow: float, reason: str = "") -> None:
        state.alert_firing = False
        state.alerts_resolved += 1
        payload = dict(objective=state.obj.name, fast_burn=fast,
                       slow_burn=slow)
        if reason:
            payload["reason"] = reason
        self._emit_event("slo-alert-resolve", **payload)

    def _emit_event(self, kind: str, **payload) -> None:
        if self.emit is not None:
            self.emit(kind, None, **payload)

    # -- end of run -----------------------------------------------------
    def finalize(self, now: float | None = None) -> None:
        """Close open breaches and resolve firing alerts at the horizon
        so complete traces satisfy the fire/resolve pairing invariant.
        Idempotent: the simulator may finalize before each report."""
        if self.finalized:
            return
        self.finalized = True
        if now is None:
            now = self.clock()
        for state in self._states:
            if state.in_breach:
                self._close_breach(state, now)
            if state.alert_firing:
                fast, slow = state.burn_rates(now)
                self._resolve_alert(state, fast=fast, slow=slow,
                                    reason="horizon")

    def results(self, horizon_s: float) -> list[SLOResult]:
        """Per-objective verdicts (call after :meth:`finalize`)."""
        out = []
        for state in self._states:
            obj = state.obj
            breach_s = state.breach_seconds
            if state.in_breach:  # results before finalize: count to now
                breach_s += max(0.0, horizon_s - state.breach_started)
            frac = breach_s / horizon_s if horizon_s > 0 else 0.0
            attainment = min(1.0, max(0.0, 1.0 - frac))
            remaining = min(1.0, max(0.0, 1.0 - frac / obj.budget_fraction))
            out.append(SLOResult(
                name=obj.name,
                kind=obj.kind,
                scope=obj.scope,
                target=obj.target,
                window_s=obj.window_s,
                budget_fraction=obj.budget_fraction,
                observations=state.observations,
                breach_count=state.breach_count,
                breach_seconds=breach_s,
                attainment=attainment,
                error_budget_remaining=remaining,
                alerts_fired=state.alerts_fired,
                alerts_resolved=state.alerts_resolved,
                violated=frac > obj.budget_fraction,
            ))
        return out

    def publish(self, telemetry, horizon_s: float) -> None:
        """Roll attainment / budget gauges into the telemetry registry."""
        for result in self.results(horizon_s):
            telemetry.gauge(
                "slo_attainment", "fraction of the run the objective held",
                objective=result.name,
            ).set(result.attainment)
            telemetry.gauge(
                "slo_error_budget_remaining",
                "unspent fraction of the objective's error budget",
                objective=result.name,
            ).set(result.error_budget_remaining)
            telemetry.gauge(
                "slo_breach_seconds", "simulated seconds spent in breach",
                objective=result.name,
            ).set(result.breach_seconds)


# ----------------------------------------------------------------------
# Post-hoc evaluation of a recorded trace (``repro slo`` on a file)
# ----------------------------------------------------------------------

def evaluate_trace(events, spec: SLOSpec):
    """Replay a recorded trace through an :class:`SLOMonitor`.

    Observations are reconstructed from the lifecycle events: latency
    from ``submit`` -> ``dispatch`` -> ``complete`` per key (tenant and
    priority from the submit payload), errors from ``shed`` /
    ``task-failed``, and queue depth from the queue-membership
    transitions (``submit``/``admit`` enter, ``dispatch`` leaves,
    ``shed``/``discard`` abandon, ``retry``/``fallback``/``requeue``
    re-enter).  Returns ``(results, emitted)`` where *emitted* is the
    list of ``(time, kind, payload)`` SLO events the replay produced.
    """
    now = [0.0]
    emitted: list[tuple[float, str, dict]] = []

    def emit(kind, key, **payload):
        emitted.append((now[0], kind, payload))

    monitor = SLOMonitor(spec, clock=lambda: now[0], emit=emit)
    # With admission armed the queue is entered at ``admit``; without,
    # at ``submit``.  Detect once so parked (deferred) tasks don't count.
    admission_armed = any(e.kind in ("admit", "defer") for e in events)
    submits: dict[object, tuple[float, str, int]] = {}
    dispatched_at: dict[object, float] = {}
    in_queue: set[object] = set()
    depth = 0
    horizon = 0.0

    def enter(key) -> None:
        nonlocal depth
        if key not in in_queue:
            in_queue.add(key)
            depth += 1

    def leave(key) -> None:
        nonlocal depth
        if key in in_queue:
            in_queue.discard(key)
            depth -= 1

    for event in events:
        now[0] = event.time
        horizon = max(horizon, event.time)
        kind, key = event.kind, event.key
        if kind == "submit":
            submits[key] = (
                event.time,
                event.payload.get("tenant", ""),
                event.payload.get("priority", 0),
            )
            if not admission_armed:
                enter(key)
            monitor.observe_queue(depth)
        elif kind == "admit":
            enter(key)
            monitor.observe_queue(depth)
        elif kind == "dispatch":
            leave(key)
            dispatched_at.setdefault(key, event.time)
            monitor.observe_queue(depth)
        elif kind in ("retry", "fallback", "requeue"):
            enter(key)
            monitor.observe_queue(depth)
        elif kind == "complete":
            leave(key)
            sub = submits.get(key)
            if sub is not None:
                t0, tenant, priority = sub
                first_dispatch = dispatched_at.get(key)
                monitor.observe_completion(
                    tenant=tenant,
                    priority=priority,
                    wait=(None if first_dispatch is None
                          else first_dispatch - t0),
                    turnaround=event.time - t0,
                )
            monitor.observe_queue(depth)
        elif kind in ("shed", "task-failed", "discard"):
            leave(key)
            if kind in ("shed", "task-failed"):
                sub = submits.get(key)
                tenant, priority = (sub[1], sub[2]) if sub else ("", 0)
                monitor.observe_error(tenant=tenant, priority=priority)
            monitor.observe_queue(depth)
    monitor.finalize(horizon)
    return monitor.results(horizon), emitted
