"""Overload protection: admission control, backpressure, and brownout.

PRs 2-3 made the grid survive *component* faults; this module protects
it when the load itself is the fault.  A flash crowd otherwise grows
the pending queue without bound and inflates every latency percentile
-- the RMS accepts everything unconditionally.  RC3E-style overcommit
only works with explicit admission at the resource manager, so the
simulator gains a front door:

* :class:`QueueBoundSpec` -- bounded pending queue.  Submissions that
  would exceed ``max_pending`` are either **shed** immediately or
  **deferred** (parked outside the queue and re-offered after a delay,
  at most ``max_defers`` times) -- classic reject-vs-backpressure.
* :class:`TokenBucketSpec` -- deterministic token-bucket rate limiting
  at submission: tokens refill continuously at ``rate_per_s`` up to
  ``burst``; a submission with no whole token available is shed.
* :class:`UtilizationSpec` -- admission ahead of matchmaking: when the
  live busy fraction of the grid's processing elements reaches
  ``threshold``, :meth:`repro.grid.rms.ResourceManagementSystem.
  plan_placement` defers instead of placing (completions re-run the
  queue, so gated tasks resume the moment occupancy drops).
* :class:`BrownoutSpec` -- staged graceful degradation under
  *sustained* overload, with hysteretic recovery:

  - stage 1: speculative replicas are disabled;
  - stage 2: additionally, low-priority tasks (``Task.priority < 0``)
    are forced onto GPP execution at dispatch (cheapest placement);
  - stage 3: additionally, the newest lowest-priority pending work is
    shed down to ``exit_pending``.

  The controller escalates one stage after the pending depth has held
  at or above ``enter_pending`` for ``dwell_s`` of simulated time, and
  recovers one stage after it has held at or below ``exit_pending``
  (strictly below ``enter_pending``) for ``dwell_s``.  In between the
  stage simply holds -- steady load can never make it oscillate.

All four policies bundle into one frozen :class:`AdmissionSpec` that
lands on ``ExperimentSpec`` and flows through the CLI; ``None`` (or an
all-``None`` spec) is the exact pre-admission behavior, byte for byte
-- the same zero-cost-when-disabled contract as ``ResilienceSpec``.

Determinism contract: no policy draws random numbers.  Decisions are
pure functions of simulated time, queue depth, token level, and live
occupancy, so arming admission never perturbs the seeded workload or
fault streams -- runs differ only where the policies actually act.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.fabric import RegionState


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")


@dataclass(frozen=True)
class QueueBoundSpec:
    """Bounded pending queue with reject-or-defer backpressure.

    A submission that would push the pending depth past ``max_pending``
    is shed (``defer=False``) or parked and re-offered after
    ``defer_delay_s`` (``defer=True``); after ``max_defers`` failed
    re-offers it is shed anyway -- backpressure must stay bounded.
    """

    max_pending: int = 64
    defer: bool = False
    defer_delay_s: float = 0.5
    max_defers: int = 4

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        _require_finite("defer_delay_s", self.defer_delay_s)
        if self.defer_delay_s <= 0:
            raise ValueError("defer_delay_s must be positive")
        if self.max_defers < 1:
            raise ValueError("max_defers must be >= 1")


@dataclass(frozen=True)
class TokenBucketSpec:
    """Deterministic token-bucket rate limiting at submission.

    Tokens refill continuously at ``rate_per_s`` up to ``burst``; each
    admitted submission consumes one.  A submission arriving with less
    than one token available is shed (rate limiters reject; the queue
    bound is the policy that defers).
    """

    rate_per_s: float
    burst: float = 8.0

    def __post_init__(self) -> None:
        _require_finite("rate_per_s", self.rate_per_s)
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        _require_finite("burst", self.burst)
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1 (a whole token)")


@dataclass(frozen=True)
class UtilizationSpec:
    """Occupancy-threshold admission ahead of matchmaking.

    When the live busy fraction of the grid's processing elements
    (:func:`grid_occupancy`) is at or above ``threshold``, the RMS
    defers placement requests instead of matchmaking.  Occupancy
    counts only *in-flight* placements (busy GPPs/GPUs, BUSY or
    CONFIGURING fabric regions), so a non-zero occupancy guarantees a
    future completion event that re-runs the queue -- the gate can
    never deadlock a drained grid.
    """

    threshold: float = 0.9

    def __post_init__(self) -> None:
        _require_finite("threshold", self.threshold)
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")


@dataclass(frozen=True)
class BrownoutSpec:
    """Staged degradation under sustained overload, with hysteresis.

    ``enter_pending`` and ``exit_pending`` are queue depths;
    escalation and recovery each require the depth to hold past its
    threshold for ``dwell_s`` of simulated time.  ``exit_pending`` must
    be strictly below ``enter_pending`` so a steady queue depth between
    the two holds the current stage forever (no oscillation).
    ``max_stage`` caps how far degradation goes (1 = speculation off,
    2 = + low-priority GPP forcing, 3 = + shedding).
    """

    enter_pending: int = 48
    exit_pending: int = 16
    dwell_s: float = 1.0
    max_stage: int = 3

    def __post_init__(self) -> None:
        if self.enter_pending < 1:
            raise ValueError("enter_pending must be >= 1")
        if self.exit_pending < 0:
            raise ValueError("exit_pending must be non-negative")
        if self.exit_pending >= self.enter_pending:
            raise ValueError(
                "exit_pending must be strictly below enter_pending (hysteresis)"
            )
        _require_finite("dwell_s", self.dwell_s)
        if self.dwell_s <= 0:
            raise ValueError("dwell_s must be positive")
        if not 1 <= self.max_stage <= 3:
            raise ValueError("max_stage must be 1, 2, or 3")


@dataclass(frozen=True)
class AdmissionSpec:
    """The overload-protection layer, as one declarative bundle.

    Every field defaults to ``None`` = off; a spec with all fields
    ``None`` (or ``AdmissionSpec()`` itself) is inert and the simulator
    takes the exact pre-admission code paths.
    """

    queue: QueueBoundSpec | None = None
    rate: TokenBucketSpec | None = None
    utilization: UtilizationSpec | None = None
    brownout: BrownoutSpec | None = None

    @property
    def enabled(self) -> bool:
        return any(
            v is not None
            for v in (self.queue, self.rate, self.utilization, self.brownout)
        )

    def describe(self) -> dict[str, object]:
        """Armed policies as a flat JSON-safe dict -- the telemetry
        file's ``meta.admission`` entry and the dashboard's header."""
        out: dict[str, object] = {}
        if self.queue is not None:
            out["queue"] = {
                "max_pending": self.queue.max_pending,
                "defer": self.queue.defer,
                "defer_delay_s": self.queue.defer_delay_s,
                "max_defers": self.queue.max_defers,
            }
        if self.rate is not None:
            out["rate"] = {
                "rate_per_s": self.rate.rate_per_s,
                "burst": self.rate.burst,
            }
        if self.utilization is not None:
            out["utilization"] = {"threshold": self.utilization.threshold}
        if self.brownout is not None:
            out["brownout"] = {
                "enter_pending": self.brownout.enter_pending,
                "exit_pending": self.brownout.exit_pending,
                "dwell_s": self.brownout.dwell_s,
                "max_stage": self.brownout.max_stage,
            }
        return out


#: Ready-made bundles for the CLI / examples, mirroring the fault and
#: resilience preset dictionaries.
ADMISSION_PRESETS: dict[str, AdmissionSpec] = {
    "none": AdmissionSpec(),
    "bounded": AdmissionSpec(queue=QueueBoundSpec(max_pending=64)),
    "backpressure": AdmissionSpec(
        queue=QueueBoundSpec(max_pending=64, defer=True, defer_delay_s=0.5)
    ),
    "brownout": AdmissionSpec(
        queue=QueueBoundSpec(max_pending=96),
        brownout=BrownoutSpec(enter_pending=48, exit_pending=16, dwell_s=1.0),
    ),
    "strict": AdmissionSpec(
        queue=QueueBoundSpec(max_pending=48),
        rate=TokenBucketSpec(rate_per_s=16.0, burst=16.0),
        utilization=UtilizationSpec(threshold=0.95),
        brownout=BrownoutSpec(enter_pending=32, exit_pending=8, dwell_s=0.5),
    ),
}


def grid_occupancy(nodes) -> float:
    """Live busy fraction of the grid's processing elements.

    GPPs/GPUs count busy while they cannot accept work; fabric regions
    count busy while BUSY or CONFIGURING.  Resident-but-idle
    (CONFIGURED) regions count *free*: they hold reusable state, not
    in-flight work, so occupancy returns to zero on a drained grid --
    the property that makes the utilization gate deadlock-free.
    """
    busy = 0
    count = 0
    for node in nodes:
        for g in node.gpps:
            busy += 0 if g.state.can_accept_work else 1
            count += 1
        for g in node.gpus:
            busy += 0 if g.state.can_accept_work else 1
            count += 1
        for r in node.rpes:
            for region in r.fabric.regions:
                if region.state in (RegionState.BUSY, RegionState.CONFIGURING):
                    busy += 1
                count += 1
    return busy / count if count else 0.0


#: Decision verbs returned by the controller's submit-time methods.
ADMIT = "admit"
DEFER = "defer"
SHED = "shed"


class AdmissionController:
    """Runtime state of one :class:`AdmissionSpec` over one run.

    Owned by the simulator (which also installs it on the RMS for the
    placement gate).  All state is deterministic -- token level, stage,
    dwell anchors, counters -- and every method is a pure function of
    its arguments plus that state: no randomness, ever.
    """

    def __init__(self, spec: AdmissionSpec):
        self.spec = spec
        # Token bucket.
        self._tokens = spec.rate.burst if spec.rate is not None else 0.0
        self._last_refill = 0.0
        # Brownout: current stage plus the hysteresis dwell anchors.
        self.stage = 0
        self._pressure_since: float | None = None
        self._relief_since: float | None = None
        #: A one-shot review event is in flight (the simulator sets and
        #: clears this; it keeps dwell reviews from piling up).
        self.review_scheduled = False
        # Counters (pushed into the metrics collector at run end).
        self.admitted = 0
        self.deferrals = 0
        self.shed = 0
        self.degraded = 0
        self.placements_gated = 0
        self.brownout_transitions = 0
        self.max_stage_seen = 0
        self.brownout_time_s = 0.0
        self.brownout_completions = 0
        self._entered_brownout_at: float | None = None

    # ------------------------------------------------------------------
    # Submit-time decisions
    # ------------------------------------------------------------------
    def decide_submit(self, now: float, pending_depth: int) -> tuple[str, str]:
        """(decision, reason) for a fresh submission: rate limit first
        (a shed there never consumes queue budget), then queue bound."""
        rate = self.spec.rate
        if rate is not None:
            tokens = min(
                rate.burst,
                self._tokens + (now - self._last_refill) * rate.rate_per_s,
            )
            self._last_refill = now
            if tokens < 1.0:
                self._tokens = tokens
                return (SHED, "rate-limit")
            self._tokens = tokens - 1.0
        return self._queue_decision(pending_depth, defers=0)

    def decide_reoffer(self, pending_depth: int, defers: int) -> tuple[str, str]:
        """(decision, reason) when a deferred submission is re-offered.
        Rate-limit tokens are not re-charged: the submission already
        paid at the front door."""
        return self._queue_decision(pending_depth, defers=defers)

    def _queue_decision(self, depth: int, *, defers: int) -> tuple[str, str]:
        queue = self.spec.queue
        if queue is None or depth < queue.max_pending:
            return (ADMIT, "")
        if queue.defer and defers < queue.max_defers:
            return (DEFER, "queue-full")
        return (SHED, "queue-full")

    # ------------------------------------------------------------------
    # Placement gate (called by the RMS ahead of matchmaking)
    # ------------------------------------------------------------------
    def gates_placement(self, nodes) -> bool:
        """True when the utilization policy vetoes matchmaking now."""
        util = self.spec.utilization
        if util is None:
            return False
        if grid_occupancy(nodes) >= util.threshold:
            self.placements_gated += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Brownout controller
    # ------------------------------------------------------------------
    def observe(self, now: float, pending_depth: int) -> tuple[int, int] | None:
        """Feed one queue-depth observation; returns ``(old, new)`` on a
        stage transition, else ``None``.

        Escalation requires ``dwell_s`` of sustained depth at or above
        ``enter_pending``; recovery requires ``dwell_s`` at or below
        ``exit_pending``.  Anything in between (or a state with no
        legal transition) clears both dwell anchors, so the stage holds
        and -- crucially -- no review event is owed: the engine can
        always drain.
        """
        b = self.spec.brownout
        if b is None:
            return None
        # Dwell comparisons tolerate one rounding step: the review event
        # is scheduled at exactly ``anchor + dwell_s``, and in floating
        # point ``(anchor + dwell) - anchor`` can land one ULP short of
        # ``dwell``.  Without the slack the review declines, reschedules
        # for the same instant, and the engine livelocks at frozen time.
        dwell = b.dwell_s - 1e-9
        if pending_depth >= b.enter_pending and self.stage < b.max_stage:
            self._relief_since = None
            if self._pressure_since is None:
                self._pressure_since = now
                return None
            if now - self._pressure_since >= dwell:
                self._pressure_since = now  # next stage needs its own dwell
                return self._transition(now, self.stage + 1)
            return None
        if pending_depth <= b.exit_pending and self.stage > 0:
            self._pressure_since = None
            if self._relief_since is None:
                self._relief_since = now
                return None
            if now - self._relief_since >= dwell:
                self._relief_since = now
                return self._transition(now, self.stage - 1)
            return None
        # Hysteresis hold: between the thresholds (or pinned at a
        # boundary stage) nothing can change, so no anchor stays armed.
        self._pressure_since = None
        self._relief_since = None
        return None

    def _transition(self, now: float, new_stage: int) -> tuple[int, int]:
        old = self.stage
        self.stage = new_stage
        self.brownout_transitions += 1
        self.max_stage_seen = max(self.max_stage_seen, new_stage)
        if old == 0 and new_stage > 0:
            self._entered_brownout_at = now
        elif new_stage == 0 and self._entered_brownout_at is not None:
            self.brownout_time_s += now - self._entered_brownout_at
            self._entered_brownout_at = None
        return (old, new_stage)

    def next_review(self) -> float | None:
        """Absolute time of the pending dwell expiry, or ``None`` when
        no transition is owed.  The simulator schedules a one-shot
        review event for it so escalation/recovery fire even while the
        event stream is otherwise quiet."""
        b = self.spec.brownout
        if b is None:
            return None
        anchor = (
            self._pressure_since
            if self._pressure_since is not None
            else self._relief_since
        )
        if anchor is None:
            return None
        return anchor + b.dwell_s

    def note_completion(self) -> None:
        """A task completed while the brownout stage was raised: this
        is the goodput the degraded system still delivered."""
        if self.stage > 0:
            self.brownout_completions += 1

    def finalize(self, now: float) -> None:
        """Close the open brownout residency window at run end."""
        if self._entered_brownout_at is not None:
            self.brownout_time_s += now - self._entered_brownout_at
            self._entered_brownout_at = None
