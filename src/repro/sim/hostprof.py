"""Host-phase profiler: where the *simulator process* spends wall time.

The causal ledger in :mod:`repro.sim.analysis` explains simulated time;
this module explains host time -- which simulator phase (event-engine
pop/push, matchmaking, dispatch bookkeeping, fault injection, telemetry
sampling, metrics reduction) burns the wall-clock at 1e6 tasks.  That
is the evidence ROADMAP item 1's "vectorize dispatch/matchmaking"
follow-up needs, so the ``sim-scale-1e5`` bench case records the
matchmaking/dispatch share through this profiler.

Design constraints, in order:

* **Zero cost when disabled.**  The simulator holds ``hostprof=None``
  by default and every instrumentation site is a single ``is not
  None`` check; the golden traces stay byte-identical either way (the
  profiler never touches simulated state, only ``perf_counter_ns``).
* **Self-time scopes.**  Scopes nest (dispatch calls matchmaking);
  entering a child charges the elapsed slice to the parent, so phase
  seconds are exclusive self-time and sum to the profiled span.
* **Cheap.**  ``enter``/``leave`` are two dict updates and one
  ``perf_counter_ns`` call each -- the enabled overhead budget is <5%
  wall on the quick bench suite.
"""

from __future__ import annotations

from time import perf_counter_ns

#: Canonical phase order for tables and dashboards.  ``other`` is the
#: remainder of the profiled span not inside any scope (Python-side
#: glue between events).
HOST_PHASES = (
    "engine", "matchmaking", "dispatch", "faults", "telemetry", "metrics",
    "other",
)


class HostPhaseProfiler:
    """Accumulates exclusive self-time per named simulator phase."""

    __slots__ = ("_ns", "_calls", "_stack", "_mark", "_open")

    def __init__(self) -> None:
        self._ns: dict[str, int] = {}
        self._calls: dict[str, int] = {}
        self._stack: list[str] = []
        self._mark: int = 0
        self._open = False

    # -- scope protocol -------------------------------------------------
    def start(self) -> None:
        """Open the profiled span; unscoped time becomes ``other``."""
        self._mark = perf_counter_ns()
        self._open = True

    def stop(self) -> None:
        """Close the span, charging the trailing slice."""
        if not self._open:
            return
        self._charge(perf_counter_ns())
        self._open = False

    def enter(self, phase: str) -> None:
        """Begin *phase*; the elapsed slice goes to the enclosing scope."""
        now = perf_counter_ns()
        if self._open:
            self._charge(now)
        else:
            self._mark = now
            self._open = True
        self._stack.append(phase)
        self._calls[phase] = self._calls.get(phase, 0) + 1

    def leave(self) -> None:
        """End the innermost scope, charging its trailing slice."""
        now = perf_counter_ns()
        self._charge(now)
        if self._stack:
            self._stack.pop()

    def _charge(self, now: int) -> None:
        phase = self._stack[-1] if self._stack else "other"
        self._ns[phase] = self._ns.get(phase, 0) + (now - self._mark)
        self._mark = now

    # -- results --------------------------------------------------------
    def phase_seconds(self) -> dict[str, float]:
        """Exclusive seconds per phase, canonical order first."""
        out = {p: self._ns[p] / 1e9 for p in HOST_PHASES if p in self._ns}
        for phase in sorted(self._ns):
            if phase not in out:
                out[phase] = self._ns[phase] / 1e9
        return out

    def call_counts(self) -> dict[str, int]:
        return dict(sorted(self._calls.items()))

    def total_seconds(self) -> float:
        return sum(self._ns.values()) / 1e9

    def phase_share(self) -> dict[str, float]:
        """Fraction of the profiled span per phase (sums to 1)."""
        total_s = self.total_seconds()
        if total_s <= 0:
            return {}
        return {p: s / total_s for p, s in self.phase_seconds().items()}

    def table(self) -> str:
        """ASCII phase table for ``repro simulate --profile-host``."""
        from repro.report import ascii_table

        seconds = self.phase_seconds()
        total = sum(seconds.values())
        rows = [
            (
                phase,
                f"{s:.4f}",
                f"{s / total:.1%}" if total > 0 else "-",
                self._calls.get(phase, 0),
            )
            for phase, s in seconds.items()
        ]
        rows.append(("total", f"{total:.4f}", "100.0%" if total > 0 else "-",
                     sum(self._calls.values())))
        return ascii_table(
            ["phase", "host s", "share", "calls"], rows,
            title="Host-phase profile (exclusive wall time)",
        )
