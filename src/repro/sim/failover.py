"""Control-plane fault tolerance: heartbeat failure detection,
replicated-RMS failover, and lease-based placements.

The paper funnels every placement decision through one central Resource
Management System, and until now the simulator's fault model kept that
component conveniently immortal: nodes crash, links sever, bitstreams
flip bits -- but the coordinator itself always answers, instantly and
correctly, and learns about node deaths *omnisciently* at the moment
they happen.  This module replaces both assumptions:

* :class:`HeartbeatMonitor` -- a deterministic phi-accrual-style
  failure detector.  Every monitored target (worker nodes and the RMS
  itself) is expected to heartbeat each :attr:`HeartbeatSpec.interval_s`
  of sim time; the monitor keeps an EWMA of observed inter-arrival
  times and grades staleness as a multiple of that EWMA.  Crossing
  :attr:`HeartbeatSpec.suspect_after` marks the target *suspect*,
  crossing :attr:`HeartbeatSpec.confirm_after` *confirms* the failure.
  Detection therefore has **latency** -- tasks can be dispatched into
  the window between a node's death and its confirmation, and lost
  heartbeats (a new fault kind) can produce *false* suspicions that
  clear on the next arrival.

* :class:`ReplicatedRMS` -- an availability wrapper modelling a
  primary with N warm standbys.  A primary crash (or gray failure:
  the process is up but useless) makes the control plane
  un-dispatchable; once the failure is detected a standby promotes
  after :attr:`FailoverSpec.takeover_delay_s` and reconciles by
  adopting every in-flight placement whose lease is still valid.
  Placements whose lease lapsed while the control plane was dark are
  *orphaned* and re-queued -- never silently lost; the PR 7
  conservation invariant (submitted == completed + failed + discarded
  + shed) extends over the whole failover path.

Everything here is plain deterministic bookkeeping: no randomness is
drawn in this module, so identically-seeded runs replay byte-identical
traces.  Like the resilience and admission layers, the whole feature
is zero-cost when disabled -- an inert :class:`FailoverSpec` normalises
to ``None`` inside the simulator and the golden traces stay
byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "HeartbeatSpec",
    "FailoverSpec",
    "FAILOVER_PRESETS",
    "HeartbeatMonitor",
    "ReplicatedRMS",
    "ALIVE",
    "SUSPECT",
    "DOWN",
]


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HeartbeatSpec:
    """Tuning for the phi-accrual-style failure detector.

    Thresholds are expressed as multiples of the per-target EWMA
    inter-arrival time rather than absolute seconds, so a target whose
    heartbeats have been arriving late (congestion, gray failure) is
    judged against its *observed* cadence -- the classic phi-accrual
    idea, collapsed to a deterministic ratio test.
    """

    #: Sim-time spacing between heartbeat rounds.
    interval_s: float = 0.5
    #: Staleness (multiples of the EWMA inter-arrival) at which a
    #: target becomes *suspect*.  Dispatch starts avoiding suspects.
    suspect_after: float = 3.0
    #: Staleness at which the failure is *confirmed* and teardown /
    #: failover begins.  Must be strictly above ``suspect_after``.
    confirm_after: float = 6.0
    #: Smoothing factor for the inter-arrival EWMA (1.0 = last sample
    #: only).
    ewma_alpha: float = 0.3
    #: Arrivals required before the inter-arrival EWMA starts adapting;
    #: until then staleness is graded against the nominal interval.
    #: (Grading itself is never gated -- a target that dies before
    #: priming must still be confirmable, or its work would stall
    #: forever.)
    min_samples: int = 2

    def __post_init__(self) -> None:
        for name in ("interval_s", "suspect_after", "confirm_after", "ewma_alpha"):
            _require_finite(name, getattr(self, name))
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s!r}")
        if self.suspect_after < 1.0:
            raise ValueError(
                f"suspect_after must be >= 1 heartbeat interval, got {self.suspect_after!r}"
            )
        if self.confirm_after <= self.suspect_after:
            raise ValueError(
                "confirm_after must exceed suspect_after "
                f"({self.confirm_after!r} <= {self.suspect_after!r})"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples!r}")


@dataclass(frozen=True)
class FailoverSpec:
    """Bundle of control-plane fault-tolerance policies.

    All defaults are inert: ``FailoverSpec()`` enables nothing, and the
    simulator normalises such a spec to ``None`` so the disabled path
    stays a single attribute check (goldens byte-identical).
    """

    #: Arm the heartbeat failure detector (nodes *and* the RMS).  When
    #: absent, crash detection stays omniscient as in PR 2.
    heartbeat: HeartbeatSpec | None = None
    #: Warm standby RMS replicas.  0 means an RMS crash is a cold
    #: restart: the control plane is dark for the fault's full
    #: downtime draw and every in-flight placement is orphaned.
    standbys: int = 0
    #: Promotion time once a primary failure is confirmed: the window
    #: a standby needs to finish reconciling before accepting work.
    takeover_delay_s: float = 0.5
    #: Placement lease duration, renewed on every heartbeat round
    #: while the control plane is up.  A promoted standby adopts
    #: placements with live leases and orphans the rest; ``None``
    #: disables leases (a standby then adopts everything).
    lease_s: float | None = None

    def __post_init__(self) -> None:
        if self.standbys < 0:
            raise ValueError(f"standbys must be >= 0, got {self.standbys!r}")
        _require_finite("takeover_delay_s", self.takeover_delay_s)
        if self.takeover_delay_s < 0:
            raise ValueError(
                f"takeover_delay_s must be >= 0, got {self.takeover_delay_s!r}"
            )
        if self.lease_s is not None:
            _require_finite("lease_s", self.lease_s)
            if self.lease_s <= 0:
                raise ValueError(f"lease_s must be positive, got {self.lease_s!r}")
        if self.lease_s is not None and self.heartbeat is not None:
            if self.lease_s <= self.heartbeat.interval_s:
                raise ValueError(
                    "lease_s must exceed the heartbeat interval or every "
                    f"lease expires between renewals ({self.lease_s!r} <= "
                    f"{self.heartbeat.interval_s!r})"
                )

    @property
    def enabled(self) -> bool:
        return (
            self.heartbeat is not None
            or self.standbys > 0
            or self.lease_s is not None
        )

    def describe(self) -> dict[str, object]:
        """Flat JSON-safe summary for telemetry metadata."""
        out: dict[str, object] = {
            "standbys": self.standbys,
            "takeover_delay_s": self.takeover_delay_s,
            "lease_s": self.lease_s if self.lease_s is not None else 0.0,
        }
        if self.heartbeat is not None:
            out.update(
                heartbeat_interval_s=self.heartbeat.interval_s,
                heartbeat_suspect_after=self.heartbeat.suspect_after,
                heartbeat_confirm_after=self.heartbeat.confirm_after,
                heartbeat_ewma_alpha=self.heartbeat.ewma_alpha,
                heartbeat_min_samples=self.heartbeat.min_samples,
            )
        return out


#: Named bundles for the CLI (``--failover <preset>``) and docs.
FAILOVER_PRESETS: dict[str, FailoverSpec] = {
    "none": FailoverSpec(),
    # Detection only: heartbeats replace the omniscient crash model but
    # an RMS crash is still a cold restart.
    "detect": FailoverSpec(heartbeat=HeartbeatSpec()),
    # The headline configuration: one warm standby, leased placements.
    "replicated": FailoverSpec(
        heartbeat=HeartbeatSpec(),
        standbys=1,
        takeover_delay_s=0.5,
        lease_s=4.0,
    ),
    # Aggressive HA: two standbys, twitchier detector, short leases.
    "ha": FailoverSpec(
        heartbeat=HeartbeatSpec(interval_s=0.25, suspect_after=2.0, confirm_after=4.0),
        standbys=2,
        takeover_delay_s=0.25,
        lease_s=2.0,
    ),
}


# ---------------------------------------------------------------------------
# Failure detector
# ---------------------------------------------------------------------------
#: Monitor states, strictly ordered: a target only ever worsens
#: ``alive -> suspect -> down`` between heartbeats, and any arrival
#: resets it to ``alive``.
ALIVE = "alive"
SUSPECT = "suspect"
DOWN = "down"

_SEVERITY = {ALIVE: 0, SUSPECT: 1, DOWN: 2}


class HeartbeatMonitor:
    """Deterministic phi-accrual-style failure detector.

    One monitor instance watches many targets (hashable keys -- node
    ids plus the ``"rms"`` sentinel).  The caller drives it from sim
    time: :meth:`heartbeat` on every arrival, :meth:`evaluate` on every
    detector round.  The monitor never schedules events and never draws
    randomness; it is pure bookkeeping.
    """

    def __init__(self, spec: HeartbeatSpec) -> None:
        self.spec = spec
        self._last: dict[object, float] = {}
        self._ewma: dict[object, float] = {}
        self._samples: dict[object, int] = {}
        self.state: dict[object, str] = {}

    # -- membership ---------------------------------------------------
    def watch(self, target: object, now: float) -> None:
        """Start monitoring *target*; the EWMA primes at the nominal
        interval so the first evaluation has a sane denominator."""
        self._last[target] = now
        self._ewma[target] = self.spec.interval_s
        self._samples[target] = 0
        self.state[target] = ALIVE

    def forget(self, target: object) -> None:
        self._last.pop(target, None)
        self._ewma.pop(target, None)
        self._samples.pop(target, None)
        self.state.pop(target, None)

    def watched(self, target: object) -> bool:
        return target in self.state

    # -- arrivals and rounds ------------------------------------------
    def heartbeat(self, target: object, now: float) -> str | None:
        """Record a heartbeat arrival from *target*.

        Returns the state this arrival *cleared* (``"suspect"`` or
        ``"down"``) when the target had been under suspicion -- the
        caller uses that to emit a rejoin event -- else ``None``.
        """
        if target not in self.state:
            return None
        interval = now - self._last[target]
        if interval > 0 and self._samples[target] >= self.spec.min_samples:
            alpha = self.spec.ewma_alpha
            self._ewma[target] = (
                alpha * interval + (1.0 - alpha) * self._ewma[target]
            )
        self._last[target] = now
        self._samples[target] += 1
        previous = self.state[target]
        self.state[target] = ALIVE
        return previous if previous != ALIVE else None

    def suspicion(self, target: object, now: float) -> float:
        """Staleness of *target* as a multiple of its EWMA
        inter-arrival time (the deterministic stand-in for phi)."""
        ewma = self._ewma.get(target)
        if not ewma:
            return 0.0
        return max(0.0, now - self._last[target]) / ewma

    def evaluate(self, target: object, now: float) -> str | None:
        """Re-grade *target* at sim time *now*.

        Returns the new state (``"suspect"`` or ``"down"``) when the
        grading *worsened* since the last call, else ``None``.  States
        never improve here -- only :meth:`heartbeat` clears suspicion.
        """
        if target not in self.state:
            return None
        phi = self.suspicion(target, now)
        if phi >= self.spec.confirm_after:
            graded = DOWN
        elif phi >= self.spec.suspect_after:
            graded = SUSPECT
        else:
            graded = ALIVE
        if _SEVERITY[graded] > _SEVERITY[self.state[target]]:
            self.state[target] = graded
            return graded
        return None


# ---------------------------------------------------------------------------
# Replicated control plane
# ---------------------------------------------------------------------------
class ReplicatedRMS:
    """Availability wrapper around the (single, shared) RMS instance.

    The simulator keeps calling the inner
    :class:`~repro.grid.rms.ResourceManagementSystem` for planning and
    commits; this wrapper only tracks *whether the control plane can
    answer* and who is answering.  A promotion does not copy any state
    -- warm standbys are modelled as replicas that followed the
    primary's node registrations and placement reports, so after
    :meth:`promote` the new primary "already has" the grid state and
    reconciliation reduces to the lease check the simulator performs.
    """

    def __init__(self, rms, spec: FailoverSpec) -> None:
        self.rms = rms
        self.spec = spec
        #: Monotone epoch: bumped on every promotion so stale events
        #: (a cold-restart timer raced by a failover) can be ignored.
        self.generation = 0
        self.standbys_left = spec.standbys
        self.available = True
        #: Gray failure: the primary answers heartbeats late and fails
        #: placements -- up, but useless.  Dispatch treats gray as
        #: down; only the detector can tell the difference.
        self.gray = False
        self._down_since: float | None = None
        self.downtime_s = 0.0
        self.crashes = 0
        self.gray_events = 0
        self.failovers = 0

    # -- state queries ------------------------------------------------
    @property
    def dispatchable(self) -> bool:
        return self.available and not self.gray

    def can_failover(self) -> bool:
        return self.standbys_left > 0

    # -- transitions (driven by the simulator) ------------------------
    def crash(self, now: float) -> bool:
        """Primary process dies.  Returns False when the control plane
        was already dark (crash-during-crash is absorbed)."""
        if not self.available:
            return False
        self.available = False
        self.gray = False
        self.crashes += 1
        if self._down_since is None:
            self._down_since = now
        return True

    def gray_start(self, now: float) -> bool:
        """Primary goes gray: still heartbeating (late), still 'up',
        but every placement answer is useless."""
        if not self.dispatchable:
            return False
        self.gray = True
        self.gray_events += 1
        if self._down_since is None:
            self._down_since = now
        return True

    def promote(self, now: float) -> int:
        """A warm standby takes over; returns the new generation."""
        if self.standbys_left <= 0:
            raise RuntimeError("no standby left to promote")
        self.standbys_left -= 1
        self.failovers += 1
        self.generation += 1
        self._mark_up(now)
        return self.generation

    def restore(self, now: float) -> None:
        """Cold restart (no standby) or gray window passing."""
        self.generation += 1
        self._mark_up(now)

    def _mark_up(self, now: float) -> None:
        self.available = True
        self.gray = False
        if self._down_since is not None:
            self.downtime_s += max(0.0, now - self._down_since)
            self._down_since = None

    # -- reporting ----------------------------------------------------
    def unavailability_s(self, horizon_s: float) -> float:
        """Total un-dispatchable sim time, closing any open window
        against *horizon_s*."""
        open_window = 0.0
        if self._down_since is not None:
            open_window = max(0.0, horizon_s - self._down_since)
        return self.downtime_s + open_window
