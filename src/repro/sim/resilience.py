"""Declarative resilience policies: deadlines, checkpoints, speculation.

Companion to :mod:`repro.grid.health` (node health scoring + circuit
breakers): where the health tracker adapts *placement*, these specs
adapt *task lifecycles*.  All four mechanisms are bundled into one
frozen, hashable :class:`ResilienceSpec` that lands on
``ExperimentSpec`` and flows through the CLI -- ``None`` (the default)
is the exact PR 2 behavior, byte-for-byte.

Determinism contract: none of these mechanisms draws random numbers.
Deadlines and checkpoints are pure functions of task estimates and
placement timings; speculative replicas reuse the primary's already
planned task and skip the fault model's per-dispatch draws entirely.
Enabling them therefore never perturbs the seeded workload stream or
the fault injector's independent RNG streams (the PR 2 stream-splitting
scheme) -- runs differ only where the mechanisms actually act.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grid.health import HealthPolicy


@dataclass(frozen=True)
class DeadlineSpec:
    """Per-task soft/hard deadlines enforced by a simulator watchdog.

    Tasks may carry explicit ``soft_deadline_s`` / ``hard_deadline_s``
    budgets (seconds after arrival); for tasks that do not, the watchdog
    derives them from the estimate::

        soft = soft_factor * t_estimated + slack_s
        hard = hard_factor * t_estimated + slack_s

    A **soft** miss is counted and -- when ``reschedule`` is on and the
    task holds a live placement -- cancels the overrunning placement via
    ``rms.abort_placement`` and re-enqueues the task through the retry
    machinery (the slow node is excluded).  A **hard** miss is terminal:
    the task fails with a ``deadline_exceeded`` JSS failure reason.
    """

    soft_factor: float = 4.0
    hard_factor: float = 12.0
    slack_s: float = 1.0
    reschedule: bool = True

    def __post_init__(self) -> None:
        if self.soft_factor <= 0 or self.hard_factor <= 0:
            raise ValueError("deadline factors must be positive")
        if self.hard_factor < self.soft_factor:
            raise ValueError("hard_factor must be >= soft_factor")
        if self.slack_s < 0:
            raise ValueError("slack_s must be non-negative")

    def soft_deadline_s(self, t_estimated: float) -> float:
        return self.soft_factor * t_estimated + self.slack_s

    def hard_deadline_s(self, t_estimated: float) -> float:
        return self.hard_factor * t_estimated + self.slack_s


@dataclass(frozen=True)
class CheckpointSpec:
    """Periodic checkpointing of fabric-hosted executions.

    Every ``interval_s`` of execution the task's progress *fraction* is
    snapshotted (fractions, not seconds, so resumed work transplants
    onto PEs with different execution speeds).  When a fault or timeout
    destroys the placement mid-execution, only the progress since the
    last checkpoint is wasted: the task is shrunk to its remaining
    fraction and re-placed on a surviving node (a *migration*).  Each
    checkpoint extends execution by ``overhead_s``.
    """

    interval_s: float = 0.5
    overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.overhead_s < 0:
            raise ValueError("overhead_s must be non-negative")


@dataclass(frozen=True)
class SpeculationSpec:
    """Straggler mitigation by speculative replicas.

    When a dispatched task exceeds ``slowdown_factor`` times its
    placement's expected total time without finishing, a duplicate is
    launched on a healthy node (the primary's node, its faulted nodes,
    and quarantined nodes are excluded).  First finisher wins; the
    loser's placement is aborted.  Replicas are shadows: they draw no
    fault-model randomness and keep the seeded streams unperturbed.
    """

    slowdown_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.slowdown_factor <= 1.0:
            raise ValueError("slowdown_factor must be > 1")


@dataclass(frozen=True)
class ResilienceSpec:
    """The adaptive resilience layer, as one declarative bundle.

    Every field defaults to ``None`` = off; a spec with all fields
    ``None`` (or ``ResilienceSpec()`` itself) is inert and the
    simulator takes the exact pre-resilience code paths.
    """

    breaker: HealthPolicy | None = None
    deadlines: DeadlineSpec | None = None
    checkpoint: CheckpointSpec | None = None
    speculation: SpeculationSpec | None = None

    @property
    def enabled(self) -> bool:
        return any(
            v is not None
            for v in (self.breaker, self.deadlines, self.checkpoint, self.speculation)
        )

    def describe(self) -> dict[str, object]:
        """Armed mechanisms as a flat JSON-safe dict -- the telemetry
        file's ``meta.resilience`` entry and the dashboard's header."""
        out: dict[str, object] = {}
        if self.breaker is not None:
            out["breaker"] = {
                "ewma_alpha": self.breaker.ewma_alpha,
                "open_threshold": self.breaker.open_threshold,
                "min_events": self.breaker.min_events,
                "open_duration_s": self.breaker.open_duration_s,
                "half_open_probes": self.breaker.half_open_probes,
                "close_after": self.breaker.close_after,
            }
        if self.deadlines is not None:
            out["deadlines"] = {
                "soft_factor": self.deadlines.soft_factor,
                "hard_factor": self.deadlines.hard_factor,
                "slack_s": self.deadlines.slack_s,
                "reschedule": self.deadlines.reschedule,
            }
        if self.checkpoint is not None:
            out["checkpoint"] = {
                "interval_s": self.checkpoint.interval_s,
                "overhead_s": self.checkpoint.overhead_s,
            }
        if self.speculation is not None:
            out["speculation"] = {
                "slowdown_factor": self.speculation.slowdown_factor,
            }
        return out


#: Ready-made bundles for the CLI / examples, mirroring FAULT_PRESETS.
RESILIENCE_PRESETS: dict[str, ResilienceSpec] = {
    "none": ResilienceSpec(),
    "defensive": ResilienceSpec(
        breaker=HealthPolicy(),
        deadlines=DeadlineSpec(),
        checkpoint=CheckpointSpec(),
    ),
    "aggressive": ResilienceSpec(
        breaker=HealthPolicy(min_events=2, open_threshold=0.4, open_duration_s=5.0),
        deadlines=DeadlineSpec(soft_factor=3.0, hard_factor=8.0, slack_s=0.5),
        checkpoint=CheckpointSpec(interval_s=0.25),
        speculation=SpeculationSpec(slowdown_factor=1.5),
    ),
}
