"""Deterministic discrete-event simulation cores.

Two interchangeable event loops live here:

* :class:`SimulationEngine` -- the reference implementation: events are
  handles on a binary heap ordered by ``(time, seq)``; ``seq`` is a
  monotone counter so simultaneous events fire in scheduling order,
  making every run bit-reproducible for a given seed.  Cancellation is
  lazy (the handle is flagged and skipped when popped), the standard
  trick to keep the heap O(log n) per operation.

* :class:`CalendarQueueEngine` -- a calendar queue (Brown 1988) plus a
  slab run for bulk submissions, tuned for million-event runs.
  Simulated time is divided into fixed-width buckets ("days"); an
  event at time *t* lands in bucket ``int(t / width) % nbuckets`` and
  the dequeue cursor walks the calendar day by day, so enqueue and
  dequeue are O(1) amortized instead of O(log n).  Inside one bucket
  events sit on a *small* heap of plain ``(time, seq, handle,
  callback)`` tuples, which CPython's heapq compares entirely in C --
  no Python-level ``__lt__`` on the hot path -- and handles are
  ``__slots__`` flyweights rather than dataclasses.  Bulk submissions
  (:meth:`~CalendarQueueEngine.schedule_batch` with ``handles=False``)
  skip per-event objects entirely: the batch is stored as sorted
  parallel arrays (the slab) consumed by an index cursor and merged
  with the calendar on ``(time, seq)`` at pop time.  Because equal
  times always map to the same bucket, ``seq`` breaks ties within it,
  and the slab merge compares the same key, the global firing order is
  *identical* to the heap engine's; a differential property test and a
  golden byte-identity lock pin this.

Both engines expose the same API; :func:`make_engine` picks one by
name.  The heap engine stays the default until a spec opts in via
``ExperimentSpec(engine="calendar")``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np


class SimulationError(RuntimeError):
    """Illegal engine operation (scheduling in the past, etc.)."""


@dataclass(order=True)
class EventHandle:
    """Handle to a scheduled event; comparable by (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class SimulationEngine:
    """The reference binary-heap event loop.

    ``now`` only moves forward; callbacks may schedule further events.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()
        self.processed_events = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* to fire *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* at absolute simulation time *time*."""
        if not math.isfinite(time):
            # NaN compares False against everything, so without this
            # check a NaN time would sail past the past-guard below and
            # silently corrupt the heap's partial order; inf would hang
            # run(until=...) at an event that never becomes due.
            raise SimulationError(f"cannot schedule at non-finite time {time}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}; simulation clock is at {self.now}"
            )
        handle = EventHandle(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_batch(
        self,
        times: Sequence[float],
        callbacks: Sequence[Callable[[], None]],
        *,
        handles: bool = True,
    ) -> list[EventHandle] | None:
        """Schedule many events at once; equivalent to a
        :meth:`schedule_at` loop (and implemented as one here -- the
        calendar engine overrides this with a slab insert).  With
        ``handles=False`` the events cannot be cancelled and nothing is
        returned, which lets optimized engines skip per-event handle
        allocation entirely.
        """
        if len(times) != len(callbacks):
            raise ValueError("need exactly one callback per time")
        # Validate the whole batch before touching the queue, so a bad
        # time mid-batch cannot leave a partial insert behind (the
        # calendar engine's batch is atomic the same way).
        for t in times:
            if not math.isfinite(t):
                raise SimulationError(f"cannot schedule at non-finite time {t}")
        out = [self.schedule_at(float(t), cb) for t, cb in zip(times, callbacks)]
        return out if handles else None

    @property
    def pending_events(self) -> int:
        return sum(1 for h in self._heap if not h.cancelled)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is dry."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = handle.time
            self.processed_events += 1
            handle.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the queue (optionally bounded); returns the final clock.

        ``until`` stops *before* firing any event later than it and
        advances the clock exactly to ``until``; ``max_events`` bounds
        the number of callbacks fired (guard against runaway feedback).
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            self.step()
            fired += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now


class SlabHandle:
    """Flyweight event handle for the calendar engine.

    ``__slots__`` keeps it to one compact allocation (no instance dict,
    no dataclass ``__lt__`` machinery); ordering lives entirely in the
    ``(time, seq, handle, callback)`` bucket tuples, whose comparison
    never reaches the handle because ``seq`` is unique.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


#: A bucket entry: ``(time, seq, handle, callback)``.  ``handle`` is
#: None for slab events spilled into the calendar (uncancellable).
_Entry = tuple[float, int, "SlabHandle | None", Callable[[], None]]

#: Bucket-count bounds.  The floor keeps the calendar meaningful on
#: tiny queues; the ceiling bounds the empty-lap scan and the resize
#: rebuild (beyond it buckets simply hold deeper heaps, which stay
#: cheap because tuple comparison is O(1) C calls).
_MIN_BUCKETS = 8
_MAX_BUCKETS = 1 << 16


class CalendarQueueEngine:
    """Calendar-queue + slab event loop; drop-in replacement for
    :class:`SimulationEngine`.

    An event at time *t* has absolute day number ``int(t / width)`` and
    lives in bucket ``day % nbuckets``; one lap of the calendar (a
    "year") spans ``nbuckets * width`` seconds.  The dequeue cursor
    remembers the current day and only pops events whose own day number
    matches it -- comparing *integer* day numbers rather than a
    floating-point bucket-top sidesteps the classic boundary-drift bug
    where an event at the very edge of a bucket is skipped for a lap.
    After a fruitless full lap (sparse far-future events) the cursor
    jumps straight to the earliest bucket head.  The bucket count grows
    and shrinks with the queue, re-estimating the width from the live
    events' span so each day holds O(1) events regardless of the
    event-time distribution.

    Bulk submissions with ``handles=False`` bypass the buckets: the
    sorted times/callbacks live in parallel arrays (the slab run) and
    an index cursor walks them, merging with the calendar on
    ``(time, seq)``.  That is the 1e6-arrival fast path: submission
    allocates no per-event objects at all.
    """

    def __init__(self, *, width: float = 1.0, nbuckets: int = _MIN_BUCKETS) -> None:
        if not (math.isfinite(width) and width > 0):
            raise ValueError("bucket width must be positive and finite")
        if nbuckets < 1:
            raise ValueError("bucket count must be positive")
        self.now: float = 0.0
        self.processed_events = 0
        self._next_seq = 0
        n = _MIN_BUCKETS
        while n < min(nbuckets, _MAX_BUCKETS):
            n <<= 1
        self._width = width
        self._nbuckets = n
        self._mask = n - 1
        self._buckets: list[list[_Entry]] = [[] for _ in range(n)]
        #: Absolute day number of the dequeue cursor.
        self._day = 0
        #: Entries stored across all buckets, cancelled included (lazy
        #: cancellation cannot decrement it; pruning does).
        self._count = 0
        #: The slab run: parallel (times, seqs, callbacks) plus cursor.
        self._run_times: list[float] = []
        self._run_seqs: Sequence[int] = ()
        self._run_cbs: Sequence[Callable[[], None]] = ()
        self._run_i = 0
        self._run_len = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> SlabHandle:
        """Schedule *callback* to fire *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> SlabHandle:
        """Schedule *callback* at absolute simulation time *time*."""
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule at non-finite time {time}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}; simulation clock is at {self.now}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        handle = SlabHandle(time, seq, callback)
        day = int(time / self._width)
        if day < self._day:
            # The cursor moved past this day (run(until=...) between
            # events, or a lap-jump over empty buckets); rewind so the
            # next scan starts no later than the new event.
            self._day = day
        heapq.heappush(self._buckets[day & self._mask], (time, seq, handle, callback))
        count = self._count + 1
        self._count = count
        if count > (self._nbuckets << 1) and self._nbuckets < _MAX_BUCKETS:
            self._resize(grow=True)
        return handle

    def schedule_batch(
        self,
        times: Sequence[float],
        callbacks: Sequence[Callable[[], None]],
        *,
        handles: bool = True,
    ) -> list[SlabHandle] | None:
        """Bulk insert; semantically identical to a :meth:`schedule_at`
        loop (``seq`` is assigned in submission order).

        With ``handles=False`` the batch becomes the slab run: after
        whole-array validation and an (only-if-needed) stable sort, the
        times and callbacks are kept as parallel arrays and no
        per-event object is allocated -- submission cost is a few numpy
        passes regardless of batch size.  Slab events cannot be
        cancelled.  With ``handles=True`` events go through the normal
        calendar (one flyweight handle each).
        """
        n = len(times)
        if n != len(callbacks):
            raise ValueError("need exactly one callback per time")
        if n == 0:
            return [] if handles else None
        t = np.ascontiguousarray(times, dtype=np.float64)
        if not np.isfinite(t).all():
            bad = float(t[~np.isfinite(t)][0])
            raise SimulationError(f"cannot schedule at non-finite time {bad}")
        t_min = float(t.min())
        if t_min < self.now:
            raise SimulationError(
                f"cannot schedule at {t_min}; simulation clock is at {self.now}"
            )
        seq0 = self._next_seq
        self._next_seq = seq0 + n

        if not handles:
            if self._run_i < self._run_len:
                self._spill_run()
            if n == 1 or bool((np.diff(t) >= 0).all()):
                # Already sorted (the common case: cumulative arrival
                # times): reference the caller's callbacks in place.
                self._run_times = t.tolist()
                self._run_seqs = range(seq0, seq0 + n)
                self._run_cbs = callbacks
            else:
                order = np.argsort(t, kind="stable")
                self._run_times = t[order].tolist()
                olist = order.tolist()
                self._run_seqs = [seq0 + j for j in olist]
                self._run_cbs = [callbacks[j] for j in olist]
            self._run_i = 0
            self._run_len = n
            return None

        # Handle path: pre-size the calendar for the post-insert
        # population so the loop never triggers an incremental rebuild.
        if self._count + n > (self._nbuckets << 1) and self._nbuckets < _MAX_BUCKETS:
            span = float(t.max()) - t_min
            live = self._count + n
            target = self._nbuckets
            while target < live and target < _MAX_BUCKETS:
                target <<= 1
            self._resize(
                nbuckets=target,
                width=max(2.0 * span / live, 1e-12) if span > 0 else None,
            )
        width = self._width
        mask = self._mask
        buckets = self._buckets
        days = (t / width).astype(np.int64)
        idx = (days & mask).tolist()
        tl = t.tolist()
        out = []
        append = out.append
        seq = seq0
        for tm, b, cb in zip(tl, idx, callbacks):
            handle = SlabHandle(tm, seq, cb)
            append(handle)
            buckets[b].append((tm, seq, handle, cb))
            seq += 1
        heapify = heapq.heapify
        for b in set(idx):
            heapify(buckets[b])
        first_day = int(days.min())
        if first_day < self._day:
            self._day = first_day
        self._count += n
        return out

    def _spill_run(self) -> None:
        """Move the unconsumed tail of the slab run into the calendar
        (needed before installing a new run); (time, seq) keys carry
        over, so ordering is unaffected."""
        times = self._run_times
        seqs = self._run_seqs
        cbs = self._run_cbs
        width = self._width
        mask = self._mask
        buckets = self._buckets
        touched = set()
        for j in range(self._run_i, self._run_len):
            tm = times[j]
            b = int(tm / width) & mask
            buckets[b].append((tm, seqs[j], None, cbs[j]))
            touched.add(b)
        for b in touched:
            heapq.heapify(buckets[b])
        spilled = self._run_len - self._run_i
        self._count += spilled
        first_day = int(times[self._run_i] / width)
        if first_day < self._day:
            self._day = first_day
        self._run_times = []
        self._run_seqs = ()
        self._run_cbs = ()
        self._run_i = self._run_len = 0
        if self._count > (self._nbuckets << 1) and self._nbuckets < _MAX_BUCKETS:
            self._resize(grow=True)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        bucketed = sum(
            1
            for bucket in self._buckets
            for _, _, h, _ in bucket
            if h is None or not h.cancelled
        )
        return bucketed + (self._run_len - self._run_i)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is dry."""
        bucket = self._advance_to_next()
        run_t = self._run_times[self._run_i] if self._run_i < self._run_len else None
        if bucket:
            head_t = bucket[0][0]
            if run_t is None or head_t <= run_t:
                return head_t
        return run_t

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        bucket = self._advance_to_next()
        ri = self._run_i
        use_run = False
        if ri < self._run_len:
            rt = self._run_times[ri]
            if not bucket:
                use_run = True
            else:
                head = bucket[0]
                use_run = rt < head[0] or (rt == head[0] and self._run_seqs[ri] < head[1])
        elif not bucket:
            return False
        if use_run:
            self._run_i = ri + 1
            self.now = rt
            self.processed_events += 1
            self._run_cbs[ri]()
        else:
            head = heapq.heappop(bucket)
            self._count -= 1
            self.now = head[0]
            self.processed_events += 1
            head[3]()
            if self._count < (self._nbuckets >> 2) and self._nbuckets > _MIN_BUCKETS:
                self._resize(grow=False)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the queue (optionally bounded); returns the final clock.

        Same contract as :meth:`SimulationEngine.run`.  The loop body
        inlines the common cases -- next event at the slab cursor or at
        the head of the current day's bucket -- and falls back to the
        full cursor scan otherwise.  Calendar attributes are re-read
        every iteration because callbacks may schedule (and thereby
        resize or install a new slab run).
        """
        heappop = heapq.heappop
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            # Calendar candidate: fast path is the current day's head.
            day = self._day
            bucket = self._buckets[day & self._mask]
            width = self._width
            while bucket:
                head = bucket[0]
                h = head[2]
                if h is not None and h.cancelled:
                    heappop(bucket)
                    self._count -= 1
                    continue
                if int(head[0] / width) != day:
                    bucket = None
                break
            if not bucket:
                bucket = self._advance_to_next()
            # Slab candidate, merged on (time, seq).
            ri = self._run_i
            use_run = False
            if ri < self._run_len:
                rt = self._run_times[ri]
                if not bucket:
                    use_run = True
                else:
                    head = bucket[0]
                    use_run = rt < head[0] or (
                        rt == head[0] and self._run_seqs[ri] < head[1]
                    )
            elif not bucket:
                break
            if use_run:
                if until is not None and rt > until:
                    self.now = until
                    break
                self._run_i = ri + 1
                self.now = rt
                self.processed_events += 1
                self._run_cbs[ri]()
            else:
                head = bucket[0]
                if until is not None and head[0] > until:
                    self.now = until
                    break
                heappop(bucket)
                self._count -= 1
                self.now = head[0]
                self.processed_events += 1
                head[3]()
                if self._count < (self._nbuckets >> 2) and self._nbuckets > _MIN_BUCKETS:
                    self._resize(grow=False)
            fired += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _advance_to_next(self) -> list[_Entry] | None:
        """Move the cursor to the bucket holding the next live bucketed
        event (slab run excluded -- the callers merge it).

        Returns that bucket (next event at its head) or None when the
        calendar is empty.  Cancelled heads are pruned along the way so
        lazy cancellation never accumulates at the front.
        """
        if self._count == 0:
            return None
        width = self._width
        mask = self._mask
        buckets = self._buckets
        heappop = heapq.heappop
        day = self._day
        for _ in range(self._nbuckets):
            bucket = buckets[day & mask]
            while bucket:
                head = bucket[0]
                h = head[2]
                if h is not None and h.cancelled:
                    heappop(bucket)
                    self._count -= 1
                    continue
                if int(head[0] / width) == day:
                    self._day = day
                    return bucket
                break
            if self._count == 0:
                self._day = day
                return None
            day += 1
        # A full lap found nothing due this year: every remaining event
        # is at least a year out.  Jump to the earliest bucket head.
        best = None
        best_bucket = None
        for bucket in buckets:
            while bucket:
                h = bucket[0][2]
                if h is not None and h.cancelled:
                    heappop(bucket)
                    self._count -= 1
                    continue
                break
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
                best_bucket = bucket
        if best_bucket is None:
            return None
        self._day = int(best[0] / width)
        return best_bucket

    def _resize(
        self,
        *,
        grow: bool | None = None,
        nbuckets: int | None = None,
        width: float | None = None,
    ) -> None:
        """Rebuild the calendar, re-estimating the bucket width so live
        events average ~2 per day.

        ``grow=True`` doubles the bucket count, ``grow=False`` halves
        it; explicit ``nbuckets``/``width`` override (bulk pre-sizing,
        where the incoming batch's span is already known).
        """
        if nbuckets is None:
            nbuckets = self._nbuckets << 1 if grow else max(self._nbuckets >> 1, _MIN_BUCKETS)
        live = [
            entry
            for bucket in self._buckets
            for entry in bucket
            if entry[2] is None or not entry[2].cancelled
        ]
        if width is not None:
            self._width = width
        elif live:
            ts = [entry[0] for entry in live]
            span = max(ts) - min(ts)
            if span > 0:
                # ~2 events per occupied day keeps each bucket heap
                # shallow; the clamp stops the width collapsing to a
                # denormal under pathological spans.
                self._width = max(2.0 * span / len(live), 1e-12)
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._buckets = [[] for _ in range(nbuckets)]
        new_width = self._width
        mask = self._mask
        buckets = self._buckets
        for entry in live:
            buckets[int(entry[0] / new_width) & mask].append(entry)
        heapify = heapq.heapify
        for bucket in buckets:
            if bucket:
                heapify(bucket)
        self._count = len(live)
        if live:
            self._day = int(min(entry[0] for entry in live) / new_width)
        else:
            self._day = int(self.now / new_width)


#: Engine registry: ``ExperimentSpec.engine`` values -> factory.
ENGINES: dict[str, Callable[[], SimulationEngine | CalendarQueueEngine]] = {
    "heap": SimulationEngine,
    "calendar": CalendarQueueEngine,
}


def make_engine(name: str) -> SimulationEngine | CalendarQueueEngine:
    """Instantiate an event engine by registry name."""
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; choose from " + ", ".join(sorted(ENGINES))
        ) from None
    return factory()
