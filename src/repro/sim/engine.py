"""Deterministic discrete-event simulation core.

A minimal, fast event loop: events are ``(time, seq, callback)`` triples
on a binary heap; ``seq`` is a monotone counter so simultaneous events
fire in scheduling order, making every run bit-reproducible for a given
seed.  Cancellation is lazy (the handle is flagged and skipped when
popped), the standard trick to keep the heap O(log n) per operation.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


class SimulationError(RuntimeError):
    """Illegal engine operation (scheduling in the past, etc.)."""


@dataclass(order=True)
class EventHandle:
    """Handle to a scheduled event; comparable by (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class SimulationEngine:
    """The event loop.

    ``now`` only moves forward; callbacks may schedule further events.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()
        self.processed_events = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* to fire *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* at absolute simulation time *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}; simulation clock is at {self.now}"
            )
        handle = EventHandle(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, handle)
        return handle

    @property
    def pending_events(self) -> int:
        return sum(1 for h in self._heap if not h.cancelled)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is dry."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = handle.time
            self.processed_events += 1
            handle.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the queue (optionally bounded); returns the final clock.

        ``until`` stops *before* firing any event later than it and
        advances the clock exactly to ``until``; ``max_events`` bounds
        the number of callbacks fired (guard against runaway feedback).
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            self.step()
            fired += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now
