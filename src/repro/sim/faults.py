"""Fault injection: seeded fault schedules and recovery policy.

The paper claims the framework is "adaptive in adding/removing
resources" (Section IV-A), but shared reconfigurable infrastructure
fails in richer ways than clean node churn: nodes crash and later
rejoin, configuration-port loads fail, single-event upsets corrupt a
circuit mid-execution, and WAN links degrade or partition.  This module
gives DReAMSim a first-class fault model:

* :class:`FaultSpec` -- a declarative, fully seeded description of a
  chaos scenario (crash/rejoin process, per-configuration failure
  probability, SEU hazard rate, link degradation, one optional
  partition window).  A spec is plain data, so it rides inside
  :class:`~repro.sim.experiment.ExperimentSpec` and the runner's cache
  key.
* :class:`RetryPolicy` -- how the RMS/JSS stack responds: bounded
  attempts, exponential backoff, exclusion of the faulted node on
  re-placement, and graceful degradation to GPP execution when RPE
  placement keeps failing.
* :class:`FaultInjector` -- the runtime object the simulator consults.
  It pre-draws the crash and link schedules over a horizon and answers
  the online questions ("does this configuration attempt fail?", "when
  does an SEU hit this execution?") from **independent seeded RNG
  streams**, so enabling faults never perturbs the workload's arrival
  sequence (see :func:`repro.sim.workload.independent_rng`).

Every draw is deterministic given ``(seed, FaultSpec)``: two runs of
the same spec produce byte-identical canonical traces, serial or
parallel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.workload import independent_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.simulator import DReAMSim

#: Stream-splitting domains (see EXPERIMENTS.md "Fault-injection RNG").
#: The workload generator owns the root stream; each fault category
#: draws from its own ``SeedSequence(seed, spawn_key=(domain,))`` child,
#: so fault draws and arrival draws can never interleave.
CRASH_STREAM = 1
CONFIG_STREAM = 2
SEU_STREAM = 3
LINK_STREAM = 4
RMS_STREAM = 5
BURST_STREAM = 6
HB_STREAM = 7


def _require_rate(name: str, value: float) -> None:
    """A rate must be a finite, non-negative float.  ``NaN < 0`` is
    False, so the old plain comparisons let NaN rates through to
    silently skew the RNG streams -- reject explicitly."""
    if not (math.isfinite(value) and value >= 0):
        raise ValueError(f"{name} must be a finite non-negative rate, got {value!r}")


def _require_prob(name: str, value: float) -> None:
    if not (math.isfinite(value) and 0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")


def _require_range(name: str, bounds: tuple[float, float]) -> None:
    lo, hi = bounds
    if not (math.isfinite(lo) and math.isfinite(hi) and 0 <= lo <= hi):
        raise ValueError(f"{name} must satisfy 0 <= lo <= hi and be finite, got {bounds!r}")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry recovery policy applied to fault-hit tasks.

    A task that loses its placement to a fault is retried up to
    ``max_attempts`` times with exponential backoff
    (``backoff_base_s * backoff_factor**(attempt-1)``), excluding the
    faulted node from re-placement.  When the budget is exhausted and
    ``gpp_fallback`` is set, a hardware task degrades gracefully to
    GPP-class execution (Section III-A's software path) with a fresh
    attempt budget; a second exhaustion -- or exhaustion with fallback
    disabled -- terminates the task as *failed*.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    gpp_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Delay before re-queueing after fault number *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class FaultSpec:
    """A seeded chaos scenario, as data (the fault-model analogue of
    :class:`~repro.sim.experiment.ExperimentSpec`).

    ==========================  =========================================
    Fault class                 Knobs
    ==========================  =========================================
    node crash / rejoin         ``crash_rate_per_s`` (Poisson over
                                ``horizon_s``), ``downtime_range_s``,
                                ``rejoin``
    RPE configuration failure   ``config_fault_prob`` per load attempt
    transient bitstream/SEU     ``seu_rate_per_s`` exponential hazard
                                while a task executes
    link degradation            ``link_fault_rate_per_s``,
                                ``degrade_factor``,
                                ``degrade_duration_range_s``
    network partition           ``partition_window`` (grid split in two
                                halves for the window)
    RMS crash / cold restart    ``rms_crash_rate_per_s``,
                                ``rms_downtime_range_s``
    RMS gray failure            ``rms_gray_rate_per_s``,
                                ``rms_gray_duration_range_s``
    heartbeat loss              ``heartbeat_loss_prob`` per node per
                                round (needs an armed heartbeat layer)
    correlated failure burst    ``burst_rate_per_s``, ``burst_size``
                                simultaneous node crashes
    ==========================  =========================================

    ``seed=None`` derives the fault streams from the experiment seed,
    keeping one seed per experiment; an explicit seed decouples them.
    """

    crash_rate_per_s: float = 0.0
    downtime_range_s: tuple[float, float] = (5.0, 20.0)
    rejoin: bool = True
    config_fault_prob: float = 0.0
    seu_rate_per_s: float = 0.0
    link_fault_rate_per_s: float = 0.0
    degrade_factor: float = 0.1
    degrade_duration_range_s: tuple[float, float] = (5.0, 15.0)
    partition_window: tuple[float, float] | None = None
    rms_crash_rate_per_s: float = 0.0
    rms_downtime_range_s: tuple[float, float] = (5.0, 15.0)
    rms_gray_rate_per_s: float = 0.0
    rms_gray_duration_range_s: tuple[float, float] = (2.0, 6.0)
    heartbeat_loss_prob: float = 0.0
    burst_rate_per_s: float = 0.0
    burst_size: int = 3
    horizon_s: float = 120.0
    seed: int | None = None

    def __post_init__(self) -> None:
        _require_rate("crash_rate_per_s", self.crash_rate_per_s)
        _require_rate("seu_rate_per_s", self.seu_rate_per_s)
        _require_rate("link_fault_rate_per_s", self.link_fault_rate_per_s)
        _require_rate("rms_crash_rate_per_s", self.rms_crash_rate_per_s)
        _require_rate("rms_gray_rate_per_s", self.rms_gray_rate_per_s)
        _require_rate("burst_rate_per_s", self.burst_rate_per_s)
        _require_prob("config_fault_prob", self.config_fault_prob)
        _require_prob("heartbeat_loss_prob", self.heartbeat_loss_prob)
        _require_range("downtime_range_s", self.downtime_range_s)
        _require_range("degrade_duration_range_s", self.degrade_duration_range_s)
        _require_range("rms_downtime_range_s", self.rms_downtime_range_s)
        _require_range("rms_gray_duration_range_s", self.rms_gray_duration_range_s)
        if not (
            math.isfinite(self.degrade_factor) and 0.0 < self.degrade_factor <= 1.0
        ):
            raise ValueError(
                f"degrade_factor must be in (0, 1], got {self.degrade_factor!r}"
            )
        if self.partition_window is not None:
            start, end = self.partition_window
            if not (
                math.isfinite(start) and math.isfinite(end) and 0 <= start < end
            ):
                raise ValueError(
                    "partition window must satisfy 0 <= start < end and be "
                    f"finite, got {self.partition_window!r}"
                )
        if self.burst_size < 1:
            raise ValueError(f"burst_size must be >= 1, got {self.burst_size!r}")
        if not (math.isfinite(self.horizon_s) and self.horizon_s > 0):
            raise ValueError(
                f"fault horizon must be positive and finite, got {self.horizon_s!r}"
            )

    @property
    def enabled(self) -> bool:
        return (
            self.crash_rate_per_s > 0
            or self.config_fault_prob > 0
            or self.seu_rate_per_s > 0
            or self.link_fault_rate_per_s > 0
            or self.partition_window is not None
            or self.rms_crash_rate_per_s > 0
            or self.rms_gray_rate_per_s > 0
            or self.heartbeat_loss_prob > 0
            or self.burst_rate_per_s > 0
        )


#: Named scenarios for the CLI (``--faults PRESET`` / ``repro chaos``).
FAULT_PRESETS: dict[str, FaultSpec] = {
    "light": FaultSpec(config_fault_prob=0.05, seu_rate_per_s=0.002),
    "node-churn": FaultSpec(crash_rate_per_s=0.05, downtime_range_s=(4.0, 12.0)),
    "links": FaultSpec(
        link_fault_rate_per_s=0.05,
        degrade_factor=0.05,
        partition_window=(20.0, 35.0),
    ),
    "chaos": FaultSpec(
        crash_rate_per_s=0.04,
        downtime_range_s=(4.0, 12.0),
        config_fault_prob=0.10,
        seu_rate_per_s=0.01,
        link_fault_rate_per_s=0.02,
        degrade_factor=0.1,
    ),
    # Control-plane chaos: the coordinator itself crashes and goes
    # gray, heartbeats drop, and node failures arrive in correlated
    # bursts (see EXPERIMENTS.md "Control-plane chaos").
    "control-plane": FaultSpec(
        rms_crash_rate_per_s=0.05,
        rms_downtime_range_s=(6.0, 12.0),
        rms_gray_rate_per_s=0.02,
        rms_gray_duration_range_s=(2.0, 5.0),
        heartbeat_loss_prob=0.05,
        crash_rate_per_s=0.02,
        downtime_range_s=(4.0, 10.0),
        burst_rate_per_s=0.01,
        burst_size=2,
    ),
}


def _poisson_times(rng: np.random.Generator, rate_per_s: float, horizon_s: float) -> list[float]:
    """Event times of a Poisson process over ``[0, horizon_s)``."""
    if rate_per_s <= 0:
        return []
    times: list[float] = []
    t = float(rng.exponential(1.0 / rate_per_s))
    while t < horizon_s:
        times.append(t)
        t += float(rng.exponential(1.0 / rate_per_s))
    return times


class FaultInjector:
    """Runtime fault source for one :class:`~repro.sim.simulator.DReAMSim`.

    ``install`` pre-draws the crash and link schedules and plants them
    on the simulator's event engine; the simulator then consults
    :meth:`config_should_fail` at each RPE configuration attempt and
    :meth:`seu_delay_s` at each execution start.  All draws come from
    four independent seeded streams, one per fault category, so adding
    a category never re-phases another.
    """

    def __init__(self, spec: FaultSpec, *, seed: int = 0):
        self.spec = spec
        root = spec.seed if spec.seed is not None else seed
        self._crash_rng = independent_rng(root, domain=CRASH_STREAM)
        self._config_rng = independent_rng(root, domain=CONFIG_STREAM)
        self._seu_rng = independent_rng(root, domain=SEU_STREAM)
        self._link_rng = independent_rng(root, domain=LINK_STREAM)
        self._rms_rng = independent_rng(root, domain=RMS_STREAM)
        self._burst_rng = independent_rng(root, domain=BURST_STREAM)
        self._hb_rng = independent_rng(root, domain=HB_STREAM)
        #: Populated by install(): the concrete, pre-drawn schedule.
        self.crash_schedule: list[tuple[float, int, float | None]] = []
        self.link_schedule: list[tuple[float, float]] = []
        self.rms_crash_schedule: list[tuple[float, float]] = []
        self.rms_gray_schedule: list[tuple[float, float]] = []
        self.burst_schedule: list[tuple[float, tuple[int, ...]]] = []
        self.injected_crashes = 0
        self.injected_config_faults = 0
        self.injected_seus = 0
        self.injected_link_faults = 0
        self.injected_rms_crashes = 0
        self.injected_rms_gray = 0
        self.injected_bursts = 0
        self.dropped_heartbeats = 0

    # ------------------------------------------------------------------
    # Schedule installation (crash / link processes)
    # ------------------------------------------------------------------
    def install(self, sim: "DReAMSim") -> None:
        """Pre-draw and plant the scheduled faults on *sim*'s engine."""
        node_ids = sorted(node.node_id for node in sim.rms.nodes)
        if node_ids and self.spec.crash_rate_per_s > 0:
            for t in _poisson_times(self._crash_rng, self.spec.crash_rate_per_s,
                                    self.spec.horizon_s):
                victim = int(node_ids[int(self._crash_rng.integers(len(node_ids)))])
                downtime = (
                    float(self._crash_rng.uniform(*self.spec.downtime_range_s))
                    if self.spec.rejoin
                    else None
                )
                self.crash_schedule.append((t, victim, downtime))
                self.injected_crashes += 1
                sim.schedule_node_crash(t, victim, rejoin_after_s=downtime)
        network = sim.rms.network
        if network is not None and len(node_ids) >= 2:
            if self.spec.link_fault_rate_per_s > 0:
                for t in _poisson_times(self._link_rng, self.spec.link_fault_rate_per_s,
                                        self.spec.horizon_s):
                    i = int(self._link_rng.integers(len(node_ids)))
                    j = int(self._link_rng.integers(len(node_ids) - 1))
                    if j >= i:
                        j += 1
                    duration = float(
                        self._link_rng.uniform(*self.spec.degrade_duration_range_s)
                    )
                    self.link_schedule.append((t, duration))
                    sim.schedule_link_degrade(
                        t,
                        node_ids[i],
                        node_ids[j],
                        factor=self.spec.degrade_factor,
                        duration_s=duration,
                    )
            if self.spec.partition_window is not None:
                start, end = self.spec.partition_window
                half = len(node_ids) // 2
                sim.schedule_partition(
                    start,
                    node_ids[:half] or node_ids[:1],
                    node_ids[half:] or node_ids[-1:],
                    heal_at_s=end,
                )
        # Control-plane faults: the coordinator itself.  Crash and gray
        # draws share the RMS stream (sequentially, so the sequence is
        # still a pure function of the spec); node-burst draws get
        # their own stream so adding bursts never re-phases anything.
        if self.spec.rms_crash_rate_per_s > 0:
            for t in _poisson_times(self._rms_rng, self.spec.rms_crash_rate_per_s,
                                    self.spec.horizon_s):
                downtime = float(self._rms_rng.uniform(*self.spec.rms_downtime_range_s))
                self.rms_crash_schedule.append((t, downtime))
                self.injected_rms_crashes += 1
                sim.schedule_rms_crash(t, downtime_s=downtime)
        if self.spec.rms_gray_rate_per_s > 0:
            for t in _poisson_times(self._rms_rng, self.spec.rms_gray_rate_per_s,
                                    self.spec.horizon_s):
                duration = float(
                    self._rms_rng.uniform(*self.spec.rms_gray_duration_range_s)
                )
                self.rms_gray_schedule.append((t, duration))
                self.injected_rms_gray += 1
                sim.schedule_rms_gray(t, duration_s=duration)
        if node_ids and self.spec.burst_rate_per_s > 0:
            for t in _poisson_times(self._burst_rng, self.spec.burst_rate_per_s,
                                    self.spec.horizon_s):
                size = min(self.spec.burst_size, len(node_ids))
                picks = self._burst_rng.choice(len(node_ids), size=size, replace=False)
                victims = tuple(int(node_ids[int(i)]) for i in sorted(picks))
                self.burst_schedule.append((t, victims))
                self.injected_bursts += 1
                for victim in victims:
                    downtime = (
                        float(self._burst_rng.uniform(*self.spec.downtime_range_s))
                        if self.spec.rejoin
                        else None
                    )
                    # A victim that is already down at t is absorbed by
                    # the simulator's membership check.
                    sim.schedule_node_crash(t, victim, rejoin_after_s=downtime)

    # ------------------------------------------------------------------
    # Online draws (configuration faults, SEUs)
    # ------------------------------------------------------------------
    def config_should_fail(self) -> bool:
        """Does the next RPE configuration attempt fail?"""
        if self.spec.config_fault_prob <= 0:
            return False
        hit = bool(self._config_rng.random() < self.spec.config_fault_prob)
        if hit:
            self.injected_config_faults += 1
        return hit

    def seu_delay_s(self, exec_time_s: float) -> float | None:
        """Time until an SEU corrupts an execution of *exec_time_s*,
        or ``None`` if the execution completes unscathed.

        The hazard is exponential with rate ``seu_rate_per_s``; one draw
        is consumed per execution start, so the decision sequence is a
        deterministic function of the (deterministic) start order.
        """
        if self.spec.seu_rate_per_s <= 0 or exec_time_s <= 0:
            return None
        t = float(self._seu_rng.exponential(1.0 / self.spec.seu_rate_per_s))
        if t >= exec_time_s:
            return None
        self.injected_seus += 1
        return t

    def heartbeat_should_drop(self) -> bool:
        """Is the next heartbeat lost in transit?  Drawn once per
        (round, live target) -- and only when the simulator has an
        armed heartbeat layer, so runs without one consume nothing
        from the stream."""
        if self.spec.heartbeat_loss_prob <= 0:
            return False
        hit = bool(self._hb_rng.random() < self.spec.heartbeat_loss_prob)
        if hit:
            self.dropped_heartbeats += 1
        return hit
