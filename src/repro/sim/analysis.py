"""Causal run analysis: where every task's turnaround actually went.

The paper's quantitative story is overhead attribution -- queueing vs.
reconfiguration vs. compute vs. software fallback -- and this module
answers it from the typed trace stream alone, with no simulator state:

* **Per-task phase ledger** -- each task's turnaround decomposed into
  the nine :data:`PHASES` (admission backpressure, queue wait,
  placement/matchmaking, reconfiguration, compute, fault recovery,
  checkpoint/migration, orphan limbo, brownout degradation) by folding
  the event stream through one interval state machine.  Every interval
  between consecutive lifecycle events is attributed to exactly one
  phase, so the phases sum to the turnaround by construction; the
  conservation invariant (|sum - turnaround| <= 1e-9) is what
  ``repro analyze`` and the CI analyze smoke assert.
* **Percentile exemplars** -- the k worst tasks of the p50/p95/p99
  turnaround buckets, each with its phase breakdown and causal event
  chain, so slow-tail diagnosis ("why was p99 8x p50?") is one call.
* **Critical path** -- over task-graph runs (``submit`` events carry
  ``deps``), the longest dependency chain weighted by per-task
  turnaround, reported with per-task phase attribution and its share
  of the run's makespan.

Attribution conventions worth knowing:

* Post-retry queue wait counts as ``recovery`` (the task only waits
  again because a fault destroyed its placement), and the setup of a
  checkpoint-resume migration counts as ``checkpoint``.  Checkpoint
  *write* overhead stretches execution and stays in ``compute`` (the
  trace deliberately carries no per-snapshot overhead field).
* ``brownout`` is queue wait absorbed while the admission controller
  held any brownout stage > 0 -- the share of waiting attributable to
  the system being degraded, split out of ``queue`` exactly.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path

from repro.sim.tracing import TraceEvent, read_jsonl

#: Every phase a task's turnaround decomposes into, in display order.
PHASES = (
    "admission",   # submit -> admit: backpressure deferrals / parking
    "queue",       # admitted, waiting for a placement decision
    "placement",   # dispatch -> start minus reconfiguration
    "reconfig",    # partial-reconfiguration share of the setup
    "compute",     # start -> complete on the chosen PE
    "recovery",    # fault teardown, backoff, and re-queue wait
    "checkpoint",  # checkpoint-resume migration setup
    "orphan",      # control-plane dark: lease lapse -> re-dispatch
    "brownout",    # queue wait absorbed while browned out (stage > 0)
)

#: Layout version of ``repro analyze --json`` documents.
ANALYSIS_FORMAT = 1

#: Ledger outcomes that end a task's story (everything else is
#: ``pending``: the run's horizon cut the task off mid-flight).
TERMINAL_OUTCOMES = frozenset({"complete", "failed", "discarded", "shed"})

#: Conservation tolerance: phases must sum to turnaround within this.
CONSERVATION_TOL = 1e-9

#: Event kinds recorded into the causal chain (with a short detail).
_CHAIN_KINDS = frozenset({
    "submit", "admit", "defer", "shed", "degrade", "dispatch", "start",
    "reconfigure", "complete", "discard", "requeue", "fault", "retry",
    "fallback", "task-failed", "timeout", "checkpoint", "migrate",
    "speculate", "probe", "lease-expire", "orphan-recovered",
})

#: Payload fields worth echoing in a chain entry, in display order.
_CHAIN_DETAILS = ("node", "from_node", "reason", "attempt", "action",
                  "deadline", "stage", "frac")


@dataclass
class TaskLedger:
    """One task's full causal story: phases, outcome, event chain."""

    key: object
    function: str
    submitted_at: float
    #: Owning tenant (from the submit event; "" for untagged tasks).
    tenant: str = ""
    finished_at: float | None = None
    outcome: str = "pending"
    phases: dict[str, float] = field(
        default_factory=lambda: {p: 0.0 for p in PHASES}
    )
    #: Producer task ids (same job) from the submit event's ``deps``.
    deps: tuple[int, ...] = ()
    #: Compact causal chain: ``"{t:.3f}s {kind}[ detail]"`` per event.
    chain: list[str] = field(default_factory=list)

    @property
    def turnaround(self) -> float | None:
        """Submit-to-terminal latency; None while the task is pending."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def phase_sum(self) -> float:
        return sum(self.phases.values())

    @property
    def conservation_error(self) -> float | None:
        """|sum(phases) - turnaround|; None for pending tasks."""
        turnaround = self.turnaround
        if turnaround is None:
            return None
        return abs(self.phase_sum - turnaround)

    @property
    def dominant_phase(self) -> str:
        """The phase that absorbed the most of this task's turnaround."""
        return max(PHASES, key=lambda p: (self.phases[p], p))

    def to_json(self) -> dict:
        return {
            "key": list(self.key) if isinstance(self.key, tuple) else self.key,
            "function": self.function,
            "tenant": self.tenant,
            "outcome": self.outcome,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "turnaround_s": self.turnaround,
            "phases_s": {p: self.phases[p] for p in PHASES},
            "dominant_phase": self.dominant_phase,
            "deps": list(self.deps),
            "chain": list(self.chain),
        }


@dataclass
class CriticalPath:
    """Longest turnaround-weighted dependency chain of a graph run."""

    #: Task keys along the path, producers first.
    keys: list[object]
    #: Sum of the path tasks' turnarounds.
    total_s: float
    #: Submit-of-first to finish-of-last span of the whole run.
    makespan_s: float
    #: Per-path-task (turnaround, dominant phase, phases dict).
    nodes: list[tuple[float, str, dict[str, float]]]

    @property
    def share_of_makespan(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.total_s / self.makespan_s

    def to_json(self) -> dict:
        return {
            "keys": [
                list(k) if isinstance(k, tuple) else k for k in self.keys
            ],
            "total_s": self.total_s,
            "makespan_s": self.makespan_s,
            "share_of_makespan": self.share_of_makespan,
            "nodes": [
                {
                    "turnaround_s": turnaround,
                    "dominant_phase": dominant,
                    "phases_s": {p: phases[p] for p in PHASES},
                }
                for turnaround, dominant, phases in self.nodes
            ],
        }


class _Fold:
    """Per-task interval state while folding the event stream."""

    __slots__ = ("ledger", "mark", "cur", "reconfig_s", "migrated")

    def __init__(self, ledger: TaskLedger):
        self.ledger = ledger
        self.mark = ledger.submitted_at
        self.cur = "queue"
        self.reconfig_s = 0.0
        self.migrated = False


def _brownout_windows(events: list[TraceEvent]) -> list[tuple[float, float]]:
    """[t0, t1) intervals the admission controller held stage > 0."""
    windows: list[tuple[float, float]] = []
    opened: float | None = None
    last_t = 0.0
    for event in events:
        last_t = event.time
        if event.kind != "brownout":
            continue
        stage = event.payload.get("stage", 0)
        if stage > 0 and opened is None:
            opened = event.time
        elif stage == 0 and opened is not None:
            windows.append((opened, event.time))
            opened = None
    if opened is not None:
        windows.append((opened, max(last_t, opened)))
    return windows


def _overlap(windows: list[tuple[float, float]],
             starts: list[float], a: float, b: float) -> float:
    """Total overlap of [a, b) with the sorted disjoint *windows*."""
    if b <= a or not windows:
        return 0.0
    total = 0.0
    # The window before the insertion point may still cover ``a``.
    for i in range(max(0, bisect_right(starts, a) - 1), len(windows)):
        t0, t1 = windows[i]
        if t0 >= b:
            break
        lo, hi = max(a, t0), min(b, t1)
        if hi > lo:
            total += hi - lo
    return total


def _chain_entry(event: TraceEvent) -> str:
    bits = [f"{event.time:.3f}s {event.kind}"]
    for name in _CHAIN_DETAILS:
        if name in event.payload:
            bits.append(f"{name}={event.payload[name]}")
    return " ".join(bits)


@dataclass
class RunAnalysis:
    """The folded result: ledgers, percentiles, exemplars, critical path."""

    ledgers: dict[object, TaskLedger]
    brownout_windows: list[tuple[float, float]]
    #: Turnaround percentiles over completed tasks (p50 / p95 / p99).
    percentiles: dict[str, float]
    #: bucket -> k worst completed tasks (p50 = typical, p95 / p99 = tail).
    exemplars: dict[str, list[TaskLedger]]
    critical_path: CriticalPath | None

    # -- invariants -----------------------------------------------------
    def conservation_violations(
        self, tol: float = CONSERVATION_TOL
    ) -> list[tuple[object, float]]:
        """(key, |error|) of every terminal ledger that breaks the
        phases-sum-to-turnaround invariant; empty when all conserve."""
        out = []
        for ledger in self.ledgers.values():
            error = ledger.conservation_error
            if error is not None and error > tol:
                out.append((ledger.key, error))
        return out

    @property
    def max_conservation_error(self) -> float:
        errors = [
            l.conservation_error
            for l in self.ledgers.values()
            if l.conservation_error is not None
        ]
        return max(errors, default=0.0)

    # -- aggregates -----------------------------------------------------
    def phase_totals(self, keys=None) -> dict[str, float]:
        """Summed phase seconds, over all tasks or a key subset."""
        totals = {p: 0.0 for p in PHASES}
        ledgers = (
            self.ledgers.values()
            if keys is None
            else [self.ledgers[k] for k in keys]
        )
        for ledger in ledgers:
            for p in PHASES:
                totals[p] += ledger.phases[p]
        return totals

    def bucket_keys(self, bucket: str) -> list[object]:
        return [l.key for l in self.exemplar_pool(bucket)]

    def exemplar_pool(self, bucket: str) -> list[TaskLedger]:
        """Every completed task inside a percentile bucket (the
        exemplars are the k worst of this pool)."""
        completed = [
            l for l in self.ledgers.values()
            if l.outcome == "complete" and l.turnaround is not None
        ]
        if not completed or not self.percentiles:
            return []
        p50, p95, p99 = (
            self.percentiles["p50"], self.percentiles["p95"],
            self.percentiles["p99"],
        )
        lo, hi = {
            "p50": (p50, p95), "p95": (p95, p99), "p99": (p99, float("inf")),
        }[bucket]
        return [l for l in completed if lo <= l.turnaround and l.turnaround < hi]

    def dominant_phase(self, bucket: str = "p99") -> str | None:
        """The phase absorbing the most time across a bucket's tasks."""
        pool = self.exemplar_pool(bucket)
        if not pool:
            return None
        totals = self.phase_totals([l.key for l in pool])
        return max(PHASES, key=lambda p: (totals[p], p))

    # -- serialization --------------------------------------------------
    def to_json(self) -> dict:
        outcomes: dict[str, int] = {}
        for ledger in self.ledgers.values():
            outcomes[ledger.outcome] = outcomes.get(ledger.outcome, 0) + 1
        violations = self.conservation_violations()
        return {
            "format": ANALYSIS_FORMAT,
            "kind": "run-analysis",
            "tasks": len(self.ledgers),
            "outcomes": dict(sorted(outcomes.items())),
            "phase_totals_s": self.phase_totals(),
            "percentiles_s": dict(self.percentiles),
            "dominant_phase": {
                bucket: self.dominant_phase(bucket)
                for bucket in ("p50", "p95", "p99")
            },
            "exemplars": {
                bucket: [l.to_json() for l in ledgers]
                for bucket, ledgers in self.exemplars.items()
            },
            "critical_path": (
                self.critical_path.to_json()
                if self.critical_path is not None
                else None
            ),
            "conservation": {
                "tolerance": CONSERVATION_TOL,
                "checked": sum(
                    1 for l in self.ledgers.values()
                    if l.conservation_error is not None
                ),
                "max_error": self.max_conservation_error,
                "violations": [
                    {"key": list(k) if isinstance(k, tuple) else k,
                     "error": e}
                    for k, e in violations
                ],
            },
            "brownout_windows": [list(w) for w in self.brownout_windows],
        }

    # -- rendering ------------------------------------------------------
    def phase_table(self, top: int = 10) -> str:
        """ASCII table of the worst-``top`` tasks by turnaround, one
        column per phase that absorbed any time in the run."""
        from repro.report import ascii_table

        totals = self.phase_totals()
        shown = [p for p in PHASES if totals[p] > 0] or ["queue", "compute"]
        terminal = sorted(
            (l for l in self.ledgers.values() if l.turnaround is not None),
            key=lambda l: (-l.turnaround, str(l.key)),
        )[:top]
        rows = [
            tuple(
                [str(l.key), l.outcome, f"{l.turnaround:.4f}"]
                + [f"{l.phases[p]:.4f}" for p in shown]
                + [l.dominant_phase]
            )
            for l in terminal
        ]
        return ascii_table(
            ["task", "outcome", "turnaround s"]
            + [f"{p} s" for p in shown] + ["dominant"],
            rows,
            title=f"Per-task phase ledger (worst {len(rows)} of "
                  f"{len(self.ledgers)} tasks by turnaround)",
        )

    def summary_lines(self) -> list[str]:
        lines = []
        completed = sum(
            1 for l in self.ledgers.values() if l.outcome == "complete"
        )
        lines.append(
            f"tasks analyzed       {len(self.ledgers)} "
            f"({completed} completed)"
        )
        totals = self.phase_totals()
        grand = sum(totals.values())
        if grand > 0:
            parts = ", ".join(
                f"{p} {totals[p] / grand:.1%}"
                for p in PHASES if totals[p] > 0
            )
            lines.append(f"time attribution     {parts}")
        if self.percentiles:
            lines.append(
                "turnaround           "
                f"p50 {self.percentiles['p50']:.4f}  "
                f"p95 {self.percentiles['p95']:.4f}  "
                f"p99 {self.percentiles['p99']:.4f} s"
            )
            for bucket in ("p50", "p95", "p99"):
                dominant = self.dominant_phase(bucket)
                if dominant is None:
                    continue
                pool = self.exemplar_pool(bucket)
                pool_totals = self.phase_totals([l.key for l in pool])
                pool_sum = sum(pool_totals.values())
                share = pool_totals[dominant] / pool_sum if pool_sum else 0.0
                lines.append(
                    f"dominant {bucket} phase   {dominant} "
                    f"({share:.1%} of the bucket's {len(pool)} task(s))"
                )
        if self.brownout_windows:
            degraded = sum(t1 - t0 for t0, t1 in self.brownout_windows)
            lines.append(
                f"brownout             {len(self.brownout_windows)} "
                f"window(s), {degraded:.2f} s degraded"
            )
        cp = self.critical_path
        if cp is not None:
            chain = " -> ".join(str(k) for k in cp.keys)
            lines.append(
                f"critical path        {len(cp.keys)} task(s), "
                f"{cp.total_s:.4f} s ({cp.share_of_makespan:.1%} of the "
                f"{cp.makespan_s:.4f} s makespan)"
            )
            lines.append(f"                     {chain}")
            for key, (turnaround, dominant, _) in zip(cp.keys, cp.nodes):
                lines.append(
                    f"                     {key}: {turnaround:.4f} s, "
                    f"mostly {dominant}"
                )
        violations = self.conservation_violations()
        if violations:
            lines.append(
                f"conservation         FAIL: {len(violations)} task(s) "
                f"break |phases - turnaround| <= {CONSERVATION_TOL:g}"
            )
            for key, error in violations[:5]:
                lines.append(f"                     {key}: error {error:.3e}")
        else:
            checked = sum(
                1 for l in self.ledgers.values()
                if l.conservation_error is not None
            )
            lines.append(
                f"conservation         OK: {checked} task(s), max error "
                f"{self.max_conservation_error:.3e} s"
            )
        return lines

    def exemplar_lines(self, chain_limit: int = 10) -> list[str]:
        lines = []
        for bucket in ("p50", "p95", "p99"):
            ledgers = self.exemplars.get(bucket, [])
            if not ledgers:
                continue
            lines.append(f"{bucket} exemplars:")
            for ledger in ledgers:
                breakdown = ", ".join(
                    f"{p} {ledger.phases[p]:.4f}"
                    for p in PHASES if ledger.phases[p] > 0
                )
                lines.append(
                    f"  {ledger.key} ({ledger.outcome}, "
                    f"{ledger.turnaround:.4f} s): {breakdown}"
                )
                chain = ledger.chain
                shown = chain[:chain_limit]
                tail = len(chain) - len(shown)
                for entry in shown:
                    lines.append(f"    {entry}")
                if tail > 0:
                    lines.append(f"    ... {tail} more event(s)")
        return lines

    def render(self, top: int = 10) -> str:
        sections = [self.phase_table(top=top), "\n".join(self.summary_lines())]
        exemplars = self.exemplar_lines()
        if exemplars:
            sections.append("\n".join(exemplars))
        return "\n\n".join(sections)


def _extract_critical_path(
    ledgers: dict[object, TaskLedger]
) -> CriticalPath | None:
    """Longest turnaround-weighted dependency chain, or None when the
    trace carries no task-graph edges (no ``deps`` on any submit)."""
    if not any(l.deps for l in ledgers.values()):
        return None
    finished = [l for l in ledgers.values() if l.turnaround is not None]
    if not finished:
        return None
    # Producers complete before their consumers submit (graph arrivals
    # are gated on producer completion), so submit order is a valid
    # topological order; ties break on the key for determinism.
    finished.sort(key=lambda l: (l.submitted_at, str(l.key)))
    best: dict[object, float] = {}
    parent: dict[object, object | None] = {}
    for ledger in finished:
        job_id = ledger.key[0] if isinstance(ledger.key, tuple) else None
        incoming = 0.0
        via: object | None = None
        for dep in ledger.deps:
            dep_key = (job_id, dep) if job_id is not None else dep
            score = best.get(dep_key)
            if score is not None and score > incoming:
                incoming, via = score, dep_key
        best[ledger.key] = incoming + ledger.turnaround
        parent[ledger.key] = via
    tail = max(best, key=lambda k: (best[k], str(k)))
    keys: list[object] = []
    cursor: object | None = tail
    while cursor is not None:
        keys.append(cursor)
        cursor = parent[cursor]
    keys.reverse()
    makespan = max(l.finished_at for l in finished) - min(
        l.submitted_at for l in finished
    )
    return CriticalPath(
        keys=keys,
        total_s=best[tail],
        makespan_s=makespan,
        nodes=[
            (
                ledgers[k].turnaround,
                ledgers[k].dominant_phase,
                dict(ledgers[k].phases),
            )
            for k in keys
        ],
    )


def analyze_events(
    events: list[TraceEvent], *, exemplars_k: int = 3, tenant: str = ""
) -> RunAnalysis:
    """Fold a time-ordered trace into a :class:`RunAnalysis`.

    ``tenant`` restricts the ledger to tasks whose submit event carries
    that tenant tag -- the single-tenant drill-down behind
    ``repro analyze --tenant`` (global events like brownout windows
    still apply; other tenants' tasks are simply not folded).
    """
    windows = _brownout_windows(events)
    window_starts = [t0 for t0, _ in windows]
    ledgers: dict[object, TaskLedger] = {}
    folds: dict[object, _Fold] = {}

    def close(f: _Fold, t: float, into: str) -> None:
        dt = t - f.mark
        f.mark = t
        if dt <= 0:
            return
        if into == "queue" and windows:
            degraded = _overlap(windows, window_starts, t - dt, t)
            if degraded > 0:
                f.ledger.phases["brownout"] += degraded
                dt -= degraded
        f.ledger.phases[into] += dt

    def finish(f: _Fold, t: float, into: str, outcome: str) -> None:
        close(f, t, into)
        f.ledger.finished_at = t
        f.ledger.outcome = outcome

    for event in events:
        kind = event.kind
        key = event.key
        if key is None:
            continue  # grid membership / control-plane / brownout events
        if kind == "submit":
            event_tenant = event.payload.get("tenant", "")
            if tenant and event_tenant != tenant:
                continue  # filtered out: no ledger, later events skip
            ledger = TaskLedger(
                key=key,
                function=event.payload.get("function", ""),
                submitted_at=event.time,
                tenant=event_tenant,
                deps=tuple(event.payload.get("deps", ())),
            )
            ledgers[key] = ledger
            folds[key] = _Fold(ledger)
            ledger.chain.append(_chain_entry(event))
            continue
        f = folds.get(key)
        if f is None:
            continue  # trace fragment: events before the first submit
        if kind in _CHAIN_KINDS:
            f.ledger.chain.append(_chain_entry(event))
        t = event.time
        if kind == "defer":
            close(f, t, f.cur)
            f.cur = "admission"
        elif kind == "admit":
            close(f, t, f.cur)
            f.cur = "queue"
        elif kind == "shed":
            finish(f, t, f.cur, "shed")
        elif kind == "dispatch":
            close(f, t, f.cur)
            f.cur = "placement"
            f.reconfig_s = event.payload.get("reconfig_time", 0.0)
            f.migrated = False
        elif kind == "migrate":
            # Emitted at the dispatch timestamp: this placement resumes
            # checkpointed work, so its setup belongs to ``checkpoint``.
            f.migrated = True
        elif kind == "start":
            dt = t - f.mark
            f.mark = t
            if dt > 0:
                if f.migrated:
                    f.ledger.phases["checkpoint"] += dt
                else:
                    r = min(f.reconfig_s, dt)
                    f.ledger.phases["reconfig"] += r
                    f.ledger.phases["placement"] += dt - r
            f.migrated = False
            f.cur = "compute"
        elif kind == "complete":
            finish(f, t, f.cur, "complete")
        elif kind == "discard":
            finish(f, t, f.cur, "discarded")
        elif kind == "task-failed":
            finish(f, t, "recovery" if f.cur == "compute" else f.cur, "failed")
        elif kind == "fault":
            # The fault scrapped whatever the open interval was doing
            # (setup or execution): that time was lost to the fault.
            close(f, t, "recovery")
            f.cur = "recovery"
        elif kind in ("retry", "fallback"):
            close(f, t, "recovery")
            f.cur = "recovery"
        elif kind == "requeue":
            # Graceful placement teardown (node departure, orphan
            # re-queue): in-flight phases become recovery wait, except
            # inside the orphan flow which keeps its own attribution.
            if f.cur in ("placement", "compute"):
                close(f, t, "recovery")
            else:
                close(f, t, f.cur)
            if f.cur != "orphan":
                f.cur = "recovery"
        elif kind == "timeout":
            if (
                event.payload.get("action") in ("requeue", "fail")
                and f.cur in ("placement", "compute")
            ):
                close(f, t, "recovery")
                f.cur = "recovery"
        elif kind == "lease-expire":
            close(f, t, f.cur)
            f.cur = "orphan"
        elif kind == "orphan-recovered":
            close(f, t, "orphan")
            f.cur = "orphan"
        # Everything else (reconfigure, checkpoint, speculate, probe,
        # degrade, slice accounting) refines the chain, not the ledger.

    completed = [
        l for l in ledgers.values()
        if l.outcome == "complete" and l.turnaround is not None
    ]
    percentiles: dict[str, float] = {}
    exemplars: dict[str, list[TaskLedger]] = {}
    if completed:
        import numpy as np

        turnarounds = np.array([l.turnaround for l in completed])
        percentiles = {
            "p50": float(np.percentile(turnarounds, 50)),
            "p95": float(np.percentile(turnarounds, 95)),
            "p99": float(np.percentile(turnarounds, 99)),
        }
        p50, p95, p99 = (
            percentiles["p50"], percentiles["p95"], percentiles["p99"],
        )
        buckets = {
            "p50": (p50, p95), "p95": (p95, p99), "p99": (p99, float("inf")),
        }
        for bucket, (lo, hi) in buckets.items():
            pool = [l for l in completed if lo <= l.turnaround < hi]
            pool.sort(key=lambda l: (-l.turnaround, str(l.key)))
            exemplars[bucket] = pool[:exemplars_k]
    return RunAnalysis(
        ledgers=ledgers,
        brownout_windows=windows,
        percentiles=percentiles,
        exemplars=exemplars,
        critical_path=_extract_critical_path(ledgers),
    )


def analyze_trace(
    path: str | Path, *, exemplars_k: int = 3, tenant: str = ""
) -> RunAnalysis:
    """Load a JSONL trace and analyze it (``repro analyze``'s core)."""
    return analyze_events(
        read_jsonl(path), exemplars_k=exemplars_k, tenant=tenant
    )


def write_analysis_json(path: str | Path, documents: dict[str, dict]) -> None:
    """Persist one or more analyses keyed by trace path (CI artifact)."""
    Path(path).write_text(
        json.dumps(
            {"format": ANALYSIS_FORMAT, "kind": "analysis-suite",
             "traces": documents},
            indent=2, sort_keys=True,
        ) + "\n",
        encoding="ascii",
    )
