"""Synthetic workloads: arrival processes and task generators.

DReAMSim's inputs are "a given number of tasks, grid nodes,
configurations, task arrival distributions, area ranges, and task
required times" (Section V).  This module generates exactly those:

* :class:`PoissonArrivals` / :class:`UniformArrivals` /
  :class:`DeterministicArrivals` -- the task arrival distributions.
* :class:`ConfigurationPool` -- the "configurations": K distinct
  hardware functions with slice footprints drawn from an area range.
  The pool also pre-populates a bitstream repository for every catalog
  device a grid offers, so the virtualization layer can resolve any
  (function, device) pair and configuration *reuse* emerges naturally
  when the pool is small relative to the task count.
* :class:`SyntheticWorkload` -- draws tasks (PE class mix, required
  times, data sizes, functions) with a seeded generator; identical
  seeds give identical workloads.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.task import DataIn, DataOut, EXTERNAL_SOURCE, Task
from repro.grid.virtualizer import BitstreamRepository
from repro.hardware.bitstream import Bitstream
from repro.hardware.fpga import FPGADevice
from repro.hardware.taxonomy import PEClass

_bitstream_ids = itertools.count(10_000)


def independent_rng(seed: int, *, domain: int) -> np.random.Generator:
    """A generator statistically independent of ``default_rng(seed)``.

    Stream splitting: the workload generator consumes the *root* stream
    (``np.random.default_rng(seed)``); every other stochastic subsystem
    (fault injection, future noise models) must draw from a spawned
    child -- ``SeedSequence(seed, spawn_key=(domain,))`` -- so that
    enabling it never perturbs the arrival/task sequence.  Each distinct
    ``domain`` yields an independent stream; the assignments live in
    :mod:`repro.sim.faults` and are documented in EXPERIMENTS.md.
    """
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(domain,)))


class ArrivalProcess(ABC):
    """A stochastic (or deterministic) task inter-arrival process."""

    @abstractmethod
    def interarrival(self, rng: np.random.Generator) -> float:
        """Draw the gap to the next arrival (seconds, >= 0)."""

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Cumulative arrival times of *n* tasks starting at t=0+gap."""
        if n < 0:
            raise ValueError("task count must be non-negative")
        gaps = np.array([self.interarrival(rng) for _ in range(n)])
        return np.cumsum(gaps)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Poisson process: exponential inter-arrival with given rate."""

    rate_per_s: float

    def __post_init__(self) -> None:
        # isfinite first: NaN slips through every comparison below.
        if not math.isfinite(self.rate_per_s) or self.rate_per_s <= 0:
            raise ValueError(
                f"arrival rate must be finite and positive, got {self.rate_per_s!r}"
            )

    def interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate_per_s))

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # Vectorized: numpy's batched exponential consumes the bit
        # stream element-for-element like n scalar draws, so this is
        # bit-identical to the base-class loop (locked by tests).
        if n < 0:
            raise ValueError("task count must be non-negative")
        return np.cumsum(rng.exponential(1.0 / self.rate_per_s, n))


@dataclass(frozen=True)
class UniformArrivals(ArrivalProcess):
    """Uniform inter-arrival in [low, high]."""

    low_s: float
    high_s: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.low_s) and math.isfinite(self.high_s)):
            raise ValueError(
                f"interarrival bounds must be finite, got [{self.low_s!r}, {self.high_s!r}]"
            )
        if self.low_s < 0 or self.high_s < self.low_s:
            raise ValueError("need 0 <= low <= high")

    def interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_s, self.high_s))

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # Vectorized; bit-identical to the scalar loop (see tests).
        if n < 0:
            raise ValueError("task count must be non-negative")
        return np.cumsum(rng.uniform(self.low_s, self.high_s, n))


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """Fixed inter-arrival gap."""

    interval_s: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.interval_s) or self.interval_s < 0:
            raise ValueError(
                f"interval must be finite and non-negative, got {self.interval_s!r}"
            )

    def interarrival(self, rng: np.random.Generator) -> float:
        return self.interval_s

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # No randomness: the cumulative grid directly.
        if n < 0:
            raise ValueError("task count must be non-negative")
        return np.cumsum(np.full(n, float(self.interval_s)))


class TraceArrivals(ArrivalProcess):
    """Replay explicit arrival times (trace-driven simulation).

    Times must be non-decreasing; generating more tasks than the trace
    holds raises rather than inventing arrivals.
    """

    def __init__(self, times: list[float]):
        if not times:
            raise ValueError("a trace needs at least one arrival")
        # Element-wise finiteness first: a NaN anywhere in the list
        # defeats both order comparisons below (NaN < x is False).
        for i, t in enumerate(times):
            if not math.isfinite(t):
                raise ValueError(f"trace time at index {i} is not finite: {t!r}")
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace times must be non-decreasing")
        if times[0] < 0:
            raise ValueError("trace times must be non-negative")
        self.times = list(times)
        self._cursor = 0
        self._last = 0.0

    def interarrival(self, rng: np.random.Generator) -> float:
        if self._cursor >= len(self.times):
            raise ValueError(
                f"trace exhausted after {len(self.times)} arrivals"
            )
        gap = self.times[self._cursor] - self._last
        self._last = self.times[self._cursor]
        self._cursor += 1
        return gap

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError("task count must be non-negative")
        if n > len(self.times) - self._cursor:
            raise ValueError(
                f"trace has {len(self.times) - self._cursor} arrivals left; {n} requested"
            )
        # Return the absolute trace times directly (cumulating gaps
        # would lose the offset after partial interarrival consumption).
        out = np.asarray(self.times[self._cursor : self._cursor + n], dtype=float)
        self._cursor += n
        if n:
            self._last = float(out[-1])
        return out


class FlashCrowdArrivals(ArrivalProcess):
    """Poisson arrivals with a rate surge: the flash-crowd shape.

    The instantaneous rate is ``base_rate_per_s`` everywhere except the
    window ``[surge_start_s, surge_start_s + surge_duration_s)``, where
    it is multiplied by ``surge_multiplier`` -- a piecewise-constant
    non-homogeneous Poisson process.  Each arrival inverts one
    unit-rate exponential "mass" draw across the rate segments, so the
    process is exact (not thinned) and consumes exactly one RNG draw
    per arrival; the vectorized path batches those draws and is
    element-identical to the scalar one (same contract as
    :class:`PoissonArrivals`, locked by stream-identity tests).

    Stateful like :class:`TraceArrivals`: the process tracks absolute
    time internally because the rate depends on it.
    """

    def __init__(
        self,
        base_rate_per_s: float,
        *,
        surge_start_s: float,
        surge_duration_s: float,
        surge_multiplier: float,
    ):
        for name, value in (
            ("base_rate_per_s", base_rate_per_s),
            ("surge_start_s", surge_start_s),
            ("surge_duration_s", surge_duration_s),
            ("surge_multiplier", surge_multiplier),
        ):
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value!r}")
        if base_rate_per_s <= 0:
            raise ValueError("base rate must be positive")
        if surge_start_s < 0:
            raise ValueError("surge start must be non-negative")
        if surge_duration_s <= 0:
            raise ValueError("surge duration must be positive")
        if surge_multiplier <= 0:
            raise ValueError("surge multiplier must be positive")
        self.base_rate_per_s = base_rate_per_s
        self.surge_start_s = surge_start_s
        self.surge_duration_s = surge_duration_s
        self.surge_multiplier = surge_multiplier
        self._t = 0.0

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at absolute time *t*."""
        if self.surge_start_s <= t < self.surge_start_s + self.surge_duration_s:
            return self.base_rate_per_s * self.surge_multiplier
        return self.base_rate_per_s

    def _next_boundary(self, t: float) -> float:
        if t < self.surge_start_s:
            return self.surge_start_s
        end = self.surge_start_s + self.surge_duration_s
        if t < end:
            return end
        return math.inf

    def _advance(self, mass: float) -> float:
        """Consume one unit-rate exponential *mass* from the internal
        cursor; returns the gap to the resulting arrival."""
        t = self._t
        while True:
            rate = self.rate_at(t)
            boundary = self._next_boundary(t)
            segment_mass = (boundary - t) * rate
            if mass < segment_mass:
                t += mass / rate
                break
            mass -= segment_mass
            t = boundary
        gap = t - self._t
        self._t = t
        return gap

    def interarrival(self, rng: np.random.Generator) -> float:
        return self._advance(float(rng.exponential(1.0)))

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # One batched unit-exponential draw (element-identical to n
        # scalar draws), then the same deterministic inversion.
        if n < 0:
            raise ValueError("task count must be non-negative")
        masses = rng.exponential(1.0, n)
        start = self._t
        out = np.empty(n)
        for i in range(n):
            self._advance(float(masses[i]))
            out[i] = self._t - start
        return out


@dataclass(frozen=True)
class PoolEntry:
    """One hardware function in the configuration pool."""

    function: str
    required_slices: int
    speedup_vs_gpp: float


class ConfigurationPool:
    """K distinct hardware functions with slice footprints in a range.

    ``populate_repository`` synthesizes a bitstream of every function
    for every given device (provider-side, as in Section III-B2), so
    tasks can reference functions by name only.
    """

    def __init__(
        self,
        size: int,
        *,
        area_range: tuple[int, int] = (2_000, 20_000),
        speedup_range: tuple[float, float] = (5.0, 40.0),
        seed: int = 0,
    ):
        if size <= 0:
            raise ValueError("pool size must be positive")
        lo, hi = area_range
        if lo <= 0 or hi < lo:
            raise ValueError("need 0 < area_lo <= area_hi")
        slo, shi = speedup_range
        if slo <= 0 or shi < slo:
            raise ValueError("need 0 < speedup_lo <= speedup_hi")
        rng = np.random.default_rng(seed)
        self.entries: list[PoolEntry] = [
            PoolEntry(
                function=f"hwfunc_{i:03d}",
                required_slices=int(rng.integers(lo, hi + 1)),
                speedup_vs_gpp=float(rng.uniform(slo, shi)),
            )
            for i in range(size)
        ]

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, function: str) -> PoolEntry:
        for e in self.entries:
            if e.function == function:
                return e
        raise KeyError(f"pool has no function {function!r}")

    def populate_repository(
        self, repository: BitstreamRepository, devices: list[FPGADevice]
    ) -> int:
        """Store a bitstream for every (function, device) pair that
        fits; returns the number stored."""
        stored = 0
        for device in devices:
            for entry in self.entries:
                if entry.required_slices > device.slices:
                    continue
                repository.put(
                    Bitstream(
                        bitstream_id=next(_bitstream_ids),
                        target_model=device.model,
                        size_bytes=device.bitstream_size_bytes(entry.required_slices),
                        required_slices=entry.required_slices,
                        implements=entry.function,
                        speedup_vs_gpp=entry.speedup_vs_gpp,
                    )
                )
                stored += 1
        return stored


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameter set for synthetic task generation (the DReAMSim knobs).

    ``gpp_fraction`` of tasks are software-only (GPP class); the rest
    are hardware tasks drawn from the configuration pool.  Required
    times are the *reference-GPP* times; hardware tasks run
    ``speedup_vs_gpp`` faster on fabric.

    ``low_priority_fraction`` tags that share of tasks with
    ``priority=-1`` (brownout degradation / shedding candidates); at
    the default 0.0 no priority draw is made, so pre-admission seed
    streams are untouched.  ``tenants`` > 1 round-robins tasks across
    that many tenant tags (no randomness consumed).
    """

    task_count: int = 100
    gpp_fraction: float = 0.5
    required_time_range_s: tuple[float, float] = (0.5, 5.0)
    data_size_range_bytes: tuple[int, int] = (1 << 16, 1 << 22)
    reference_mips: float = 1000.0
    low_priority_fraction: float = 0.0
    tenants: int = 1

    def __post_init__(self) -> None:
        if self.task_count < 0:
            raise ValueError("task count must be non-negative")
        if not 0.0 <= self.gpp_fraction <= 1.0:
            raise ValueError("gpp_fraction must be in [0, 1]")
        lo, hi = self.required_time_range_s
        # isfinite first: NaN bounds pass both order comparisons.
        if not (math.isfinite(lo) and math.isfinite(hi)):
            raise ValueError(f"time range must be finite, got [{lo!r}, {hi!r}]")
        if lo <= 0 or hi < lo:
            raise ValueError("need 0 < time_lo <= time_hi")
        dlo, dhi = self.data_size_range_bytes
        if dlo < 0 or dhi < dlo:
            raise ValueError("need 0 <= data_lo <= data_hi")
        if not math.isfinite(self.reference_mips) or self.reference_mips <= 0:
            raise ValueError(
                f"reference_mips must be finite and positive, got {self.reference_mips!r}"
            )
        if not 0.0 <= self.low_priority_fraction <= 1.0:
            raise ValueError("low_priority_fraction must be in [0, 1]")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")


@dataclass
class WorkloadColumns:
    """A columnar workload: parallel arrays plus a lazy materializer.

    Produced by :meth:`SyntheticWorkload.generate_columns`.  The scale
    path (``DReAMSim.submit_workload_columns``) bulk-schedules
    ``times`` and calls :meth:`task` once per arrival instant, so at no
    point do a million :class:`Task` trees exist simultaneously.
    """

    spec: WorkloadSpec
    pool: ConfigurationPool
    first_task_id: int
    times: np.ndarray       #: arrival times, non-decreasing (float64)
    ref_times: np.ndarray   #: reference-GPP required times (float64)
    data_bytes: np.ndarray  #: input sizes (int64)
    is_gpp: np.ndarray      #: software-only mask (bool)
    pool_idx: np.ndarray    #: pool entry per hardware task, -1 for GPP
    priority: np.ndarray    #: scheduling class per task (int64, 0 = normal)

    def __len__(self) -> int:
        return len(self.times)

    def _tenant(self, task_id: int) -> str:
        return f"tenant{task_id % self.spec.tenants}" if self.spec.tenants > 1 else ""

    def task(self, i: int) -> Task:
        """Materialize task *i* exactly as ``generate()`` would."""
        task_id = self.first_task_id + i
        ref_time = float(self.ref_times[i])
        data_bytes = int(self.data_bytes[i])
        workload_mi = ref_time * self.spec.reference_mips
        if self.is_gpp[i]:
            return Task(
                task_id=task_id,
                data_in=(DataIn(EXTERNAL_SOURCE, 0, data_bytes),),
                data_out=(DataOut(0, data_bytes // 2),),
                exec_req=ExecReq(
                    node_type=PEClass.GPP,
                    artifacts=Artifacts(application_code="synthetic", input_data_bytes=data_bytes),
                ),
                t_estimated=ref_time,
                workload_mi=workload_mi,
                function="",
                priority=int(self.priority[i]),
                tenant=self._tenant(task_id),
            )
        entry = self.pool.entries[int(self.pool_idx[i])]
        return Task(
            task_id=task_id,
            data_in=(DataIn(EXTERNAL_SOURCE, 0, data_bytes),),
            data_out=(DataOut(0, data_bytes // 2),),
            exec_req=ExecReq(
                node_type=PEClass.RPE,
                constraints=(MinValue("slices", entry.required_slices),),
                artifacts=Artifacts(application_code="synthetic", input_data_bytes=data_bytes),
            ),
            t_estimated=ref_time / entry.speedup_vs_gpp,
            workload_mi=workload_mi,
            function=entry.function,
            priority=int(self.priority[i]),
            tenant=self._tenant(task_id),
        )

    def materialize(self) -> list[tuple[float, Task]]:
        """Expand to the eager (time, Task) stream (tests, small runs)."""
        return [(float(self.times[i]), self.task(i)) for i in range(len(self))]


class SyntheticWorkload:
    """Seeded generator of (arrival_time, Task) streams."""

    def __init__(
        self,
        spec: WorkloadSpec,
        pool: ConfigurationPool,
        arrivals: ArrivalProcess,
        *,
        seed: int = 0,
        first_task_id: int = 0,
    ):
        self.spec = spec
        self.pool = pool
        self.arrivals = arrivals
        self.seed = seed
        self.first_task_id = first_task_id

    def generate(self) -> list[tuple[float, Task]]:
        """Produce the full arrival stream, deterministically."""
        rng = np.random.default_rng(self.seed)
        times = self.arrivals.arrival_times(self.spec.task_count, rng)
        out: list[tuple[float, Task]] = []
        for i in range(self.spec.task_count):
            task_id = self.first_task_id + i
            ref_time = float(rng.uniform(*self.spec.required_time_range_s))
            data_bytes = int(rng.integers(*self.spec.data_size_range_bytes))
            workload_mi = ref_time * self.spec.reference_mips
            # Gated on the fraction so the default (0.0) consumes zero
            # draws and pre-admission seed streams stay byte-identical.
            priority = 0
            if self.spec.low_priority_fraction > 0.0:
                priority = (
                    -1 if float(rng.random()) < self.spec.low_priority_fraction else 0
                )
            tenant = (
                f"tenant{task_id % self.spec.tenants}" if self.spec.tenants > 1 else ""
            )
            if rng.random() < self.spec.gpp_fraction:
                task = Task(
                    task_id=task_id,
                    data_in=(DataIn(EXTERNAL_SOURCE, 0, data_bytes),),
                    data_out=(DataOut(0, data_bytes // 2),),
                    exec_req=ExecReq(
                        node_type=PEClass.GPP,
                        artifacts=Artifacts(application_code="synthetic", input_data_bytes=data_bytes),
                    ),
                    t_estimated=ref_time,
                    workload_mi=workload_mi,
                    function="",
                    priority=priority,
                    tenant=tenant,
                )
            else:
                entry = self.pool.entries[int(rng.integers(len(self.pool.entries)))]
                task = Task(
                    task_id=task_id,
                    data_in=(DataIn(EXTERNAL_SOURCE, 0, data_bytes),),
                    data_out=(DataOut(0, data_bytes // 2),),
                    exec_req=ExecReq(
                        node_type=PEClass.RPE,
                        constraints=(MinValue("slices", entry.required_slices),),
                        artifacts=Artifacts(application_code="synthetic", input_data_bytes=data_bytes),
                    ),
                    t_estimated=ref_time / entry.speedup_vs_gpp,
                    workload_mi=workload_mi,
                    function=entry.function,
                    priority=priority,
                    tenant=tenant,
                )
            out.append((float(times[i]), task))
        return out

    def generate_columns(self) -> WorkloadColumns:
        """Vectorized columnar generation for scale runs.

        Draws whole columns (arrivals, required times, data sizes,
        class mix, pool picks) in one numpy call each instead of one
        task at a time.  Column order differs from ``generate()``'s
        interleaved per-task order, so the two paths consume the seed
        stream differently and yield *different* (equally valid)
        workloads; ``generate_columns_scalar()`` is the scalar
        reference for THIS draw order, and the stream-identity tests
        lock the two together element-for-element.
        """
        rng = np.random.default_rng(self.seed)
        n = self.spec.task_count
        times = self.arrivals.arrival_times(n, rng)
        lo, hi = self.spec.required_time_range_s
        dlo, dhi = self.spec.data_size_range_bytes
        ref_times = rng.uniform(lo, hi, n)
        data_bytes = rng.integers(dlo, dhi, n)
        is_gpp = rng.random(n) < self.spec.gpp_fraction
        pool_idx = np.full(n, -1, dtype=np.int64)
        hw = ~is_gpp
        hw_count = int(hw.sum())
        if hw_count:
            pool_idx[hw] = rng.integers(len(self.pool.entries), size=hw_count)
        # Gated like generate(): the default fraction of 0.0 draws
        # nothing, keeping pre-admission column streams byte-identical.
        priority = np.zeros(n, dtype=np.int64)
        if self.spec.low_priority_fraction > 0.0:
            priority = np.where(
                rng.random(n) < self.spec.low_priority_fraction, -1, 0
            ).astype(np.int64)
        return WorkloadColumns(
            spec=self.spec,
            pool=self.pool,
            first_task_id=self.first_task_id,
            times=times,
            ref_times=ref_times,
            data_bytes=np.asarray(data_bytes, dtype=np.int64),
            is_gpp=is_gpp,
            pool_idx=pool_idx,
            priority=priority,
        )

    def generate_columns_scalar(self) -> WorkloadColumns:
        """Scalar reference for ``generate_columns``: identical draw
        order, one value at a time.  Exists so tests can assert the
        vectorized path is stream-identical; never use it at scale."""
        rng = np.random.default_rng(self.seed)
        n = self.spec.task_count
        times = ArrivalProcess.arrival_times(self.arrivals, n, rng)
        lo, hi = self.spec.required_time_range_s
        dlo, dhi = self.spec.data_size_range_bytes
        ref_times = np.array([float(rng.uniform(lo, hi)) for _ in range(n)])
        data_bytes = np.array(
            [int(rng.integers(dlo, dhi)) for _ in range(n)], dtype=np.int64
        )
        is_gpp = np.array(
            [float(rng.random()) < self.spec.gpp_fraction for _ in range(n)],
            dtype=bool,
        )
        pool_idx = np.full(n, -1, dtype=np.int64)
        for i in range(n):
            if not is_gpp[i]:
                pool_idx[i] = int(rng.integers(len(self.pool.entries)))
        priority = np.zeros(n, dtype=np.int64)
        if self.spec.low_priority_fraction > 0.0:
            priority = np.array(
                [
                    -1 if float(rng.random()) < self.spec.low_priority_fraction else 0
                    for _ in range(n)
                ],
                dtype=np.int64,
            )
        return WorkloadColumns(
            spec=self.spec,
            pool=self.pool,
            first_task_id=self.first_task_id,
            times=times,
            ref_times=ref_times,
            data_bytes=data_bytes,
            is_gpp=is_gpp,
            pool_idx=pool_idx,
            priority=priority,
        )
