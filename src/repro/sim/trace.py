"""Run-record export: CSV/JSON artifacts from finished simulations.

DReAMSim runs are the paper's experimental vehicle; exporting their
per-task records and event traces lets results be post-processed
outside the library (spreadsheets, plotting, regression baselines).
Formats are deliberately boring: flat CSV for per-task tables and the
chronological trace, JSON for aggregate reports.  Exports round-trip
(:func:`load_task_records`) so stored baselines can be compared against
fresh runs in tests.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path

from repro.sim.metrics import MetricsCollector, SimulationReport

#: Per-task CSV columns, in order.
TASK_COLUMNS = [
    "key",
    "function",
    "pe_kind",
    "node_id",
    "resource_index",
    "slices",
    "arrival",
    "dispatch",
    "start",
    "finish",
    "transfer_time",
    "synthesis_time",
    "reconfig_time",
    "reused_configuration",
    "discarded",
]


def export_task_records(collector: MetricsCollector, path: str | Path) -> int:
    """Write one CSV row per task; returns the row count."""
    path = Path(path)
    with path.open("w", newline="", encoding="ascii") as fh:
        writer = csv.DictWriter(fh, fieldnames=TASK_COLUMNS)
        writer.writeheader()
        count = 0
        for tm in collector.tasks.values():
            row = {column: getattr(tm, column) for column in TASK_COLUMNS if column != "key"}
            row["key"] = repr(tm.key)
            writer.writerow(row)
            count += 1
    return count


def load_task_records(path: str | Path) -> list[dict]:
    """Read back an exported per-task CSV with typed fields."""

    def parse(column: str, text: str):
        if text == "":
            return None
        if column in ("reused_configuration", "discarded"):
            return text == "True"
        if column in ("node_id", "resource_index", "slices"):
            return int(text)
        if column in ("function", "pe_kind", "key"):
            return text
        return float(text)

    with Path(path).open(newline="", encoding="ascii") as fh:
        return [
            {column: parse(column, row[column]) for column in TASK_COLUMNS}
            for row in csv.DictReader(fh)
        ]


def export_trace(collector: MetricsCollector, path: str | Path) -> int:
    """Write the chronological event trace (time, event, key)."""
    path = Path(path)
    with path.open("w", newline="", encoding="ascii") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "event", "key"])
        for time, event, key in collector.trace:
            writer.writerow([time, event, repr(key)])
    return len(collector.trace)


def export_report_json(report: SimulationReport, path: str | Path) -> None:
    """Serialize an aggregate report as JSON."""
    Path(path).write_text(json.dumps(asdict(report), indent=2), encoding="ascii")


def load_report_json(path: str | Path) -> SimulationReport:
    """Rehydrate an exported aggregate report."""
    data = json.loads(Path(path).read_text(encoding="ascii"))
    return SimulationReport(**data)
