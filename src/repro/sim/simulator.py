"""DReAMSim facade: the timed grid simulator.

Wires the event engine, an RMS (with its scheduler strategy and
virtualization layer), an optional JSS, and the metrics collector into
the simulator of refs [20][21]:

* independent task streams with arbitrary arrival processes;
* task-graph execution (Figure 7): a task becomes ready when all its
  producers complete;
* Eq. 3 application execution (Figure 8): clause steps run in order,
  ``Par`` steps concurrently, ``Stream`` clauses as chunked pipelines
  (the Section VI future-work scenario);
* configuration reuse and partial reconfiguration through the fabric
  model;
* dynamic node join/leave with re-queueing of in-flight tasks (the
  Section IV-A adaptivity claim under faults);
* optional task discard after a maximum pending age;
* fault injection (:mod:`repro.sim.faults`): node crash/rejoin,
  configuration-port failures, SEUs corrupting running tasks, link
  degradation and partitions -- answered with a bounded-retry /
  exponential-backoff / GPP-fallback recovery policy
  (:class:`~repro.sim.faults.RetryPolicy`);
* an adaptive resilience layer (:mod:`repro.sim.resilience` +
  :mod:`repro.grid.health`): per-node EWMA health scores with
  circuit-breaker quarantine, a soft/hard deadline watchdog,
  checkpoint/restart with migration for fabric tasks, and speculative
  replicas for stragglers.  ``resilience=None`` (the default) keeps
  every one of these paths byte-for-byte identical to the
  pre-resilience simulator.
* overload protection (:mod:`repro.sim.admission`): bounded-queue
  admission with reject-or-defer backpressure, token-bucket rate
  limiting, a utilization gate ahead of RMS matchmaking, and a
  hysteretic brownout controller that degrades in stages under
  sustained queue pressure (speculation off -> low-priority GPP
  forcing -> shedding) and recovers when pressure drops.
  ``admission=None`` (the default) is byte-identical to the
  unprotected simulator, same contract as ``resilience``.
* online SLO monitoring (:mod:`repro.sim.slo`): declarative
  objectives (latency percentile, throughput floor, availability,
  queue depth; global or tenant/priority scoped) evaluated over
  sliding sim-time windows with multi-window burn-rate alerting.
  Purely observational -- ``slo=None`` (the default) and an armed
  monitor both leave simulated behavior byte-identical; the monitor
  only *adds* ``slo-*`` trace events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from collections.abc import Callable

from repro.core.application import Application, ClauseKind
from repro.core.execreq import ExecReq
from repro.core.matching import task_required_slices
from repro.core.node import Node
from repro.core.task import DataIn, DataOut, Task
from repro.grid.health import HealthTracker
from repro.grid.jss import JobSubmissionSystem
from repro.grid.network import NetworkError
from repro.grid.rms import Placement, ResourceManagementSystem, SchedulingError
from repro.hardware.taxonomy import PEClass
from repro.sim.admission import ADMIT, DEFER, AdmissionController, AdmissionSpec
from repro.sim.engine import EventHandle, make_engine
from repro.sim.failover import (
    SUSPECT,
    FailoverSpec,
    HeartbeatMonitor,
    ReplicatedRMS,
)
from repro.sim.faults import FaultInjector, RetryPolicy
from repro.sim.metrics import MetricsCollector, SimulationReport
from repro.sim.resilience import ResilienceSpec
from repro.sim.slo import SLOMonitor, SLOSpec
from repro.sim.telemetry import TelemetryRegistry
from repro.sim.tracing import Tracer


@dataclass(eq=False)
class _Entry:
    """One schedulable unit inside the simulator.

    ``eq=False`` keeps identity comparison semantics: entries are
    unique mutable objects, and the pending-queue membership tests in
    the hot path must not fall into field-by-field dataclass equality
    (which would compare whole Task trees once per queue scan).
    """

    key: object
    task: Task
    job_id: int | None = None
    on_complete: Callable[["_Entry"], None] | None = None
    dispatched: bool = False
    discarded: bool = False
    placement: Placement | None = None
    events: list[EventHandle] = field(default_factory=list)
    #: Suppress JSS completion marking (stream chunks mark once).
    silent: bool = False
    # --- fault-recovery state (untouched in fault-free runs) ---
    #: Placement attempts lost to faults since the last fresh budget.
    attempts: int = 0
    #: Nodes this task faulted on; excluded from re-placement.
    excluded_nodes: set[int] = field(default_factory=set)
    #: Last fault / SchedulingError message seen for this task.
    failure_reason: str | None = None
    #: Terminal failure (retry budget exhausted).
    failed: bool = False
    #: Already degraded to GPP execution once.
    fell_back: bool = False
    #: Waiting out a retry backoff (not in the pending queue).
    in_backoff: bool = False
    # --- resilience state (inert while resilience is None) ---
    #: Terminal success; watchdog / speculation timers check this.
    completed: bool = False
    #: This placement is a probationary probe on a half-open breaker.
    is_probe: bool = False
    #: This entry is a speculative replica shadowing ``primary``.
    is_replica: bool = False
    primary: "_Entry | None" = None
    #: When a replica's placement was committed (waste accounting).
    launched_at: float = 0.0
    #: Watchdog timers; unlike ``events`` they survive placement loss.
    deadline_events: list[EventHandle] = field(default_factory=list)
    #: Progress fraction preserved by the newest checkpoint of the
    #: *current* placement (reset on every resume).
    checkpoint_frac: float = 0.0
    #: Node the task last checkpointed on; set while a resume is
    #: pending so the next dispatch emits a ``migrate`` event.
    resumed_from: int | None = None
    # --- overload-protection state (inert while admission is None) ---
    #: Terminally rejected by admission control / load shedding
    #: (``discarded`` is set too, so every timer guard already skips).
    shed: bool = False
    #: Backpressure deferrals this submission has absorbed so far.
    defers: int = 0
    # --- control-plane failover state (inert while failover is None) ---
    #: Sim time this placement's lease lapses; renewed on every
    #: heartbeat round while the control plane is up.  A promoted
    #: standby only adopts placements whose lease is still valid.
    lease_expiry: float = 0.0


class DReAMSim:
    """The simulator.  One instance = one experiment run."""

    def __init__(
        self,
        rms: ResourceManagementSystem,
        *,
        jss: JobSubmissionSystem | None = None,
        discard_after_s: float | None = None,
        tracer: Tracer | None = None,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        resilience: ResilienceSpec | None = None,
        admission: AdmissionSpec | None = None,
        failover: FailoverSpec | None = None,
        slo: SLOSpec | None = None,
        telemetry: TelemetryRegistry | None = None,
        engine: str = "heap",
        metrics: MetricsCollector | None = None,
        hostprof=None,
    ):
        if discard_after_s is not None and discard_after_s <= 0:
            raise ValueError("discard_after_s must be positive")
        self.engine = make_engine(engine)
        self.rms = rms
        #: Host-phase profiler (None = the exact unprofiled paths:
        #: every scope below is a single attribute check, and the
        #: profiler never reads or writes simulated state, so enabling
        #: it leaves traces byte-identical).
        self.hostprof = hostprof
        self.jss = jss or JobSubmissionSystem(virtualization=rms.virtualization)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.tracer = tracer
        self.discard_after_s = discard_after_s
        self.pending: list[_Entry] = []
        self.active: dict[object, _Entry] = {}
        #: Columnar arrival stream (scale runs); cursor-driven lazy
        #: task materialization, see submit_workload_columns.
        self._stream = None
        self._stream_i = 0
        self.requeues = 0
        #: (job_id, task_id) -> node where the task's outputs landed;
        #: feeds the RMS's locality-aware input-staging prices.
        self._output_sites: dict[tuple[object, int], int] = {}
        #: Fault injection (None = the exact fault-free behavior).
        self.faults = faults
        self.retry = retry or RetryPolicy()
        #: Link pairs currently degraded (overlapping draws collapse).
        self._degraded_pairs: set[frozenset[int]] = set()
        #: Adaptive resilience layer (None = the exact pre-resilience
        #: behavior; an all-None spec normalizes to None too).
        self.resilience = (
            resilience if resilience is not None and resilience.enabled else None
        )
        self.health: HealthTracker | None = None
        if self.resilience is not None and self.resilience.breaker is not None:
            self.health = HealthTracker(self.resilience.breaker)
            for node in rms.nodes:
                self.health.register_node(node.node_id)
        rms.health = self.health
        #: key -> live speculative replica shadowing the active entry.
        self._replicas: dict[object, _Entry] = {}
        for node in rms.nodes:
            self.metrics.register_node(node.node_id)
        #: Control-plane fault tolerance (None = the exact pre-failover
        #: behavior; an inert spec normalizes to None, same contract as
        #: resilience/admission).  ``control_plane`` is created lazily
        #: when an RMS fault actually fires, so fault-free runs without
        #: a FailoverSpec never allocate any of this machinery.
        self.failover = (
            failover if failover is not None and failover.enabled else None
        )
        self.control_plane: ReplicatedRMS | None = None
        self.monitor: HeartbeatMonitor | None = None
        #: Targets ("rms" or node ids) currently under suspicion.
        self._suspected_targets: set[object] = set()
        #: node_id -> sim time it silently died (detection pending).
        self._dead_nodes: dict[int, float] = {}
        #: target -> sim time the control plane actually went dark;
        #: consumed by the detector to sample detection latency.
        self._down_at: dict[object, float] = {}
        self._detection_latencies: list[float] = []
        self._false_suspicions = 0
        self._leases_expired = 0
        if self.failover is not None:
            self.control_plane = ReplicatedRMS(rms, self.failover)
            if self.failover.heartbeat is not None:
                self.monitor = HeartbeatMonitor(self.failover.heartbeat)
                self.monitor.watch("rms", 0.0)
                for node in rms.nodes:
                    self.monitor.watch(node.node_id, 0.0)
                self.engine.schedule(
                    self.failover.heartbeat.interval_s, self._heartbeat_tick
                )
        if faults is not None:
            faults.install(self)
        #: Overload protection (None = the exact unprotected behavior;
        #: an all-None spec normalizes to None, same as resilience).
        self.admission = (
            AdmissionController(admission)
            if admission is not None and admission.enabled
            else None
        )
        rms.admission = self.admission
        #: Online SLO monitoring (None = the exact unmonitored paths;
        #: an empty spec normalizes to None, same contract as the other
        #: layers).  The monitor is purely observational -- it schedules
        #: no events, draws no randomness, and never touches simulator
        #: state -- so arming it never perturbs traces.
        self.slo = (
            SLOMonitor(
                slo,
                clock=lambda: self.engine.now,
                emit=self._emit,
            )
            if slo is not None and slo.enabled
            else None
        )
        #: Sim-time telemetry (None = the exact un-instrumented paths:
        #: every hook below is a single attribute check).  Telemetry is
        #: purely observational -- it schedules no events and draws no
        #: randomness -- so enabling it never perturbs traces either.
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.set_clock(lambda: self.engine.now)
            self.rms.telemetry = telemetry
            self.jss.telemetry = telemetry
            if self.health is not None:
                self.health.telemetry = telemetry
            self._telemetry_init()

    # ------------------------------------------------------------------
    # Sim-time telemetry (no-ops without a registry)
    # ------------------------------------------------------------------
    def _telemetry_init(self) -> None:
        """Seed every always-present series with a t=0 sample so the
        dashboard renders each chart even when nothing ever changes.
        The hot-path gauges are cached here: :meth:`_telemetry_sample`
        runs after every dispatch round, so it must not pay the
        registry's label-keyed lookup each time."""
        registry = self.telemetry
        assert registry is not None
        self._t_queue_gauge = registry.gauge(
            "sim_queue_depth", "tasks awaiting placement"
        )
        self._t_active_gauge = registry.gauge(
            "sim_active_tasks", "tasks holding a placement"
        )
        self._t_util_gauges: dict[int, object] = {}
        self._t_queue_gauge.set(0)
        self._t_active_gauge.set(0)
        registry.gauge(
            "sim_tasks_in_backoff", "tasks waiting out a retry backoff"
        ).set(0)
        if self.admission is not None:
            registry.gauge(
                "sim_brownout_stage",
                "current brownout degradation stage (0 = healthy)",
            ).set(0)
        if self.control_plane is not None:
            self._telemetry_cp_state(0)
        for node in self.rms.nodes:
            self._t_util_gauge(node.node_id).set(0)
            if self.health is not None:
                registry.gauge(
                    "node_breaker_state",
                    "circuit breaker state (0=closed, 1=half-open, 2=open)",
                    node=node.node_id,
                ).set(0)
            for rpe in node.rpes:
                registry.gauge(
                    "rpe_configured_slices",
                    "fabric slices currently allocated to configurations",
                    node=node.node_id,
                    rpe=rpe.resource_id,
                ).set(0)

    def _t_util_gauge(self, node_id: int):
        gauge = self._t_util_gauges.get(node_id)
        if gauge is None:
            gauge = self.telemetry.gauge(
                "node_utilization",
                "busy fraction of the node's processing elements",
                node=node_id,
            )
            self._t_util_gauges[node_id] = gauge
        return gauge

    def _telemetry_sample(self) -> None:
        """Re-sample the grid-level gauges after a state transition.
        Gauges only record *changes*, so frequent calls stay cheap.
        Utilization reads the live resources directly (no snapshot
        dataclasses) -- this runs once per dispatch round."""
        if self.telemetry is None:
            return
        prof = self.hostprof
        if prof is not None:
            prof.enter("telemetry")
        try:
            self._t_queue_gauge.set(len(self.pending))
            self._t_active_gauge.set(len(self.active))
            for node in self.rms.nodes:
                parts = 0.0
                count = 0
                for g in node.gpps:
                    parts += 0.0 if g.state.can_accept_work else 1.0
                    count += 1
                for g in node.gpus:
                    parts += 0.0 if g.state.can_accept_work else 1.0
                    count += 1
                for r in node.rpes:
                    total = r.fabric.total_slices
                    if total:
                        parts += 1.0 - r.fabric.available_slices / total
                    count += 1
                self._t_util_gauge(node.node_id).set(
                    parts / count if count else 0.0
                )
        finally:
            if prof is not None:
                prof.leave()

    def _telemetry_count(self, name: str, help: str, amount: float = 1.0,
                         **labels) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(name, help, **labels).inc(amount)

    # ------------------------------------------------------------------
    # Structured tracing (no-ops without a tracer)
    # ------------------------------------------------------------------
    def _emit(self, kind: str, key: object = None, **payload) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.engine.now, kind, key=key, **payload)

    def _region_slices(self, placement: Placement) -> tuple[int, int]:
        """(region slices, device capacity) of a committed placement."""
        rpe = self.rms.node(placement.candidate.node_id).rpe(
            placement.candidate.resource_id
        )
        for region in rpe.fabric.regions:
            if region.region_id == placement.region_id:
                return region.slices, rpe.fabric.total_slices
        raise SchedulingError(  # pragma: no cover - defensive
            f"placement region {placement.region_id} vanished"
        )

    def _emit_slice_free(self, entry: _Entry) -> None:
        placement = entry.placement
        if self.tracer is None or placement is None or placement.region_id is None:
            return
        slices, capacity = self._region_slices(placement)
        self._emit(
            "slice-free",
            entry.key,
            node=placement.candidate.node_id,
            resource=placement.candidate.resource_id,
            region=placement.region_id,
            slices=slices,
            capacity=capacity,
        )

    # ------------------------------------------------------------------
    # Submission APIs
    # ------------------------------------------------------------------
    def submit_workload(self, stream: list[tuple[float, Task]]) -> None:
        """Schedule an independent-task arrival stream (synthetic
        workloads); each task is tracked as its own JSS job."""
        for time, task in stream:
            job = self.jss.submit_task(task, submit_time=time)

            def make(t: Task = task, j: int = job.job_id) -> Callable[[], None]:
                return lambda: self._arrive(t, job_id=j, key=(j, t.task_id))

            self.engine.schedule_at(time, make())

    def submit_workload_columns(self, columns) -> None:
        """Schedule a columnar arrival stream for scale runs.

        ``columns`` is a :class:`repro.sim.workload.WorkloadColumns`
        (or anything with ``.times`` and ``.task(i)``).  Arrivals are
        bulk-scheduled through ``engine.schedule_batch`` with a single
        shared bound-method callback -- no per-task closure, handle, or
        JSS job is allocated -- and each :class:`Task` is materialized
        lazily at its arrival instant.  Both engines fire equal-time
        events in scheduling order, so the cursor walks the columns in
        submission order exactly as the per-task path would.
        """
        times = columns.times
        n = len(times)
        if n == 0:
            return
        self._stream = columns
        self._stream_i = 0
        self.engine.schedule_batch(times, [self._stream_arrive] * n, handles=False)

    def _stream_arrive(self) -> None:
        i = self._stream_i
        self._stream_i = i + 1
        task = self._stream.task(i)
        self._arrive(task, key=task.task_id)

    def submit_graph(self, tasks: list[Task], *, at: float = 0.0) -> int:
        """Submit a Figure 7 style data-dependent task set; returns the
        job id.  A task arrives the moment its producers all complete."""
        job = self.jss.submit_graph(tasks, submit_time=at)
        graph = job.graph
        assert graph is not None
        completed: set[int] = set()
        arrived: set[int] = set()

        def arrive_ready() -> None:
            for task_id in sorted(graph.ready_tasks(completed) - arrived):
                arrived.add(task_id)
                task = graph.task(task_id)
                self._arrive(
                    task,
                    job_id=job.job_id,
                    key=(job.job_id, task_id),
                    on_complete=on_complete,
                )

        def on_complete(entry: _Entry) -> None:
            completed.add(entry.task.task_id)
            arrive_ready()

        self.engine.schedule_at(at, arrive_ready)
        return job.job_id

    def submit_application(
        self,
        application: Application,
        tasks: dict[int, Task],
        *,
        at: float = 0.0,
        stream_chunks: int = 4,
    ) -> int:
        """Submit an Eq. 3 application; clause steps execute in order
        (Figure 8).  ``Stream`` clauses pipeline each task over
        *stream_chunks* data chunks."""
        if stream_chunks <= 0:
            raise ValueError("stream_chunks must be positive")
        job = self.jss.submit_application(application, tasks, submit_time=at)

        stages: list[tuple[ClauseKind, list[int]]] = []
        for clause in application.clauses:
            if clause.kind is ClauseKind.STREAM:
                stages.append((ClauseKind.STREAM, list(clause.task_ids)))
            else:
                for step in clause.steps():
                    stages.append((clause.kind, step))

        state = {"stage": 0}

        def launch_stage() -> None:
            if state["stage"] >= len(stages):
                return
            kind, task_ids = stages[state["stage"]]
            if kind is ClauseKind.STREAM:
                self._launch_stream(job.job_id, [tasks[t] for t in task_ids],
                                    stream_chunks, next_stage)
                return
            remaining = {"n": len(task_ids)}

            def on_complete(entry: _Entry) -> None:
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    next_stage()

            for task_id in task_ids:
                self._arrive(
                    tasks[task_id],
                    job_id=job.job_id,
                    key=(job.job_id, task_id),
                    on_complete=on_complete,
                )

        def next_stage() -> None:
            state["stage"] += 1
            launch_stage()

        self.engine.schedule_at(at, launch_stage)
        return job.job_id

    def _launch_stream(
        self,
        job_id: int,
        stream_tasks: list[Task],
        chunks: int,
        when_done: Callable[[], None],
    ) -> None:
        """Pipelined execution: chunk *c* of stage *j* becomes ready when
        chunk *c* of stage *j-1* and chunk *c-1* of stage *j* are done."""
        done: set[tuple[int, int]] = set()  # (stage_index, chunk)
        arrived: set[tuple[int, int]] = set()
        total = len(stream_tasks) * chunks

        def chunk_task(stage: int, chunk: int) -> Task:
            base = stream_tasks[stage]
            scale = 1.0 / chunks
            return replace(
                base,
                data_in=tuple(
                    DataIn(d.source_task_id, d.data_id, max(1, d.size_bytes // chunks))
                    for d in base.data_in
                ),
                data_out=tuple(
                    DataOut(d.data_id, max(1, d.size_bytes // chunks))
                    for d in base.data_out
                ),
                t_estimated=base.t_estimated * scale,
                workload_mi=base.effective_workload_mi * scale,
            )

        def ready(stage: int, chunk: int) -> bool:
            if stage > 0 and (stage - 1, chunk) not in done:
                return False
            if chunk > 0 and (stage, chunk - 1) not in done:
                return False
            return True

        def arrive_ready() -> None:
            for stage in range(len(stream_tasks)):
                for chunk in range(chunks):
                    pos = (stage, chunk)
                    if pos in arrived or pos in done or not ready(*pos):
                        continue
                    arrived.add(pos)
                    base = stream_tasks[stage]
                    is_last = chunk == chunks - 1
                    self._arrive(
                        chunk_task(stage, chunk),
                        job_id=job_id,
                        key=(job_id, base.task_id, chunk),
                        on_complete=make_hook(pos, base.task_id, is_last),
                        silent=not is_last,
                    )

        def make_hook(pos: tuple[int, int], task_id: int, is_last: bool):
            def hook(entry: _Entry) -> None:
                done.add(pos)
                if len(done) == total:
                    when_done()
                else:
                    arrive_ready()

            return hook

        arrive_ready()

    # ------------------------------------------------------------------
    # Dynamic grid membership (Section IV-A adaptivity)
    # ------------------------------------------------------------------
    def schedule_node_join(self, time: float, node: Node, *, site: int | None = None) -> None:
        def join() -> None:
            self.rms.register_node(node, site=site)
            self.metrics.register_node(node.node_id)
            if self.health is not None:
                self.health.register_node(node.node_id)
            if self.monitor is not None:
                self.monitor.watch(node.node_id, self.engine.now)
            self.metrics.trace.append((self.engine.now, "node-join", node.node_id))
            self._emit(
                "node-join",
                node=node.node_id,
                gpps=len(node.gpps),
                rpes=len(node.rpes),
            )
            self._dispatch_pending()

        self.engine.schedule_at(time, join)

    def schedule_node_leave(self, time: float, node_id: int) -> None:
        def leave() -> None:
            for replica in self._replicas_on(node_id):
                self._abort_replica(replica, action="abort")
            victims = [
                e
                for e in self.active.values()
                if e.placement is not None and e.placement.candidate.node_id == node_id
            ]
            for entry in victims:
                for handle in entry.events:
                    handle.cancel()
                entry.events.clear()
                self._emit_slice_free(entry)
                self._emit("requeue", entry.key, node=node_id)
                if entry.is_probe and self.health is not None:
                    # A graceful departure is not evidence against the
                    # node; just return the unconsumed probe slot.
                    self.health.abort_probe(node_id)
                entry.is_probe = False
                entry.dispatched = False
                entry.placement = None
                del self.active[entry.key]
                self.pending.append(entry)
                self.requeues += 1
                self.metrics.trace.append((self.engine.now, "requeue", entry.key))
            self.rms.unregister_node(node_id)
            if self.monitor is not None:
                self.monitor.forget(node_id)
                self._suspected_targets.discard(node_id)
            self.metrics.trace.append((self.engine.now, "node-leave", node_id))
            self._emit("node-leave", node=node_id)
            self._dispatch_pending()

        self.engine.schedule_at(time, leave)

    # ------------------------------------------------------------------
    # Fault injection (sim/faults.py schedules these; they can also be
    # called directly for scripted chaos scenarios)
    # ------------------------------------------------------------------
    def schedule_node_crash(
        self, time: float, node_id: int, *, rejoin_after_s: float | None = None
    ) -> None:
        """An *unplanned* node loss: unlike the graceful
        :meth:`schedule_node_leave`, in-flight tasks on the node are
        treated as fault victims (retry policy, node exclusion, wasted
        work) and the node's fabric state is wiped -- a rejoin brings
        back cold hardware with no resident configurations.

        With a heartbeat layer armed the loss is *silent*: the node
        stops heartbeating and its in-flight work stalls, but the RMS
        keeps it registered (and may even dispatch into the void) until
        the detector confirms the death -- that window is the detection
        latency the failover layer exists to bound."""

        def crash() -> None:
            if node_id not in {n.node_id for n in self.rms.nodes}:
                return  # already down or departed; the draw is a no-op
            if node_id in self._dead_nodes:
                return  # already dead, detection pending; draws collapse
            if self.monitor is not None and self.monitor.watched(node_id):
                self._crash_with_detection(node_id, rejoin_after_s)
                return
            site = self.rms.site_of(node_id)
            for replica in self._replicas_on(node_id):
                self._abort_replica(replica, action="abort", clear_configuration=True)
            victims = [
                e
                for e in self.active.values()
                if e.placement is not None and e.placement.candidate.node_id == node_id
            ]
            for entry in victims:
                self._fault(
                    entry,
                    reason=f"node {node_id} crashed",
                    clear_configuration=True,
                )
            node = self.rms.unregister_node(node_id)
            for rpe in node.rpes:  # power-cycle: resident configs are gone
                for region in rpe.fabric.regions:
                    if region.configuration is not None:
                        rpe.fabric.clear(region)
                rpe.hosted_softcores.clear()
            self.metrics.record_node_down(node_id, self.engine.now)
            self.metrics.trace.append((self.engine.now, "node-leave", node_id))
            self._emit("node-leave", node=node_id, crash=True)
            if rejoin_after_s is not None:
                def rejoin() -> None:
                    if node_id in {n.node_id for n in self.rms.nodes}:
                        return  # pragma: no cover - defensive
                    self.rms.register_node(node, site=site)
                    self.metrics.record_node_up(node_id, self.engine.now)
                    self.metrics.trace.append((self.engine.now, "node-join", node_id))
                    self._emit(
                        "node-join",
                        node=node_id,
                        gpps=len(node.gpps),
                        rpes=len(node.rpes),
                        rejoin=True,
                    )
                    self._dispatch_pending()

                self.engine.schedule(rejoin_after_s, rejoin)
            self._dispatch_pending()

        self.engine.schedule_at(time, crash)

    # ------------------------------------------------------------------
    # Control-plane fault tolerance (sim/failover.py): heartbeat
    # detection, replicated-RMS failover, lease-based orphan recovery
    # ------------------------------------------------------------------
    def _cp(self) -> ReplicatedRMS:
        """The control-plane wrapper, created lazily so runs without a
        FailoverSpec only pay for it once an RMS fault actually fires
        (cold-restart semantics: no standbys, no detector)."""
        if self.control_plane is None:
            self.control_plane = ReplicatedRMS(
                self.rms, self.failover or FailoverSpec()
            )
        return self.control_plane

    def _telemetry_cp_state(self, value: int) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge(
                "control_plane_state", "0 = up, 1 = gray, 2 = down"
            ).set(value)

    def schedule_rms_crash(self, time: float, *, downtime_s: float) -> None:
        """The primary RMS process dies.  The data plane keeps going --
        placements already executing run to completion on their nodes --
        but no *new* placement decision can be made until the control
        plane returns: via standby promotion (failover) once the loss is
        noticed, or via a cold restart after *downtime_s*.  A cold
        restart lost its in-flight placement table, so every active
        placement is orphaned back into the queue (conserved, never
        silently lost)."""
        if downtime_s <= 0:
            raise ValueError("downtime_s must be positive")

        def crash() -> None:
            cp = self._cp()
            now = self.engine.now
            if not cp.crash(now):
                return  # already dark; overlapping draws collapse
            self._down_at.setdefault("rms", now)
            self._emit("rms-crash", downtime=downtime_s, generation=cp.generation)
            self._telemetry_count(
                "sim_rms_crashes_total", "primary RMS process crashes"
            )
            self._telemetry_cp_state(2)
            generation = cp.generation

            def restore() -> None:
                if cp.generation != generation or cp.available:
                    return  # a standby (or a gray recovery) got there first
                self._rms_cold_restore()

            self.engine.schedule(downtime_s, restore)
            if self.monitor is None and cp.can_failover():
                # No detector armed: the loss is noticed immediately
                # (omniscient mode) and a warm standby takes over after
                # just the takeover delay.
                self._emit(
                    "failover-begin",
                    target="rms",
                    generation=generation,
                    standbys=cp.standbys_left,
                )
                assert self.failover is not None
                self.engine.schedule(
                    self.failover.takeover_delay_s,
                    lambda: self._promote(generation),
                )

        self.engine.schedule_at(time, crash)

    def schedule_rms_gray(self, time: float, *, duration_s: float) -> None:
        """A gray failure: the primary stays up but stops doing useful
        work (and stops heartbeating), so nothing dispatches.  Without a
        detector it silently recovers after *duration_s*; with one, the
        heartbeat staleness accrues exactly like a crash and a standby
        can take over mid-gray."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")

        def gray() -> None:
            cp = self._cp()
            now = self.engine.now
            if not cp.gray_start(now):
                return  # already dark; overlapping draws collapse
            self._down_at.setdefault("rms", now)
            self._emit("rms-gray", duration=duration_s, generation=cp.generation)
            self._telemetry_count(
                "sim_rms_gray_total", "primary RMS gray-failure episodes"
            )
            self._telemetry_cp_state(1)
            generation = cp.generation

            def recover() -> None:
                if cp.generation != generation or not cp.gray:
                    return  # a standby took over (or a crash escalated)
                cp.restore(self.engine.now)
                self._down_at.pop("rms", None)
                if "rms" in self._suspected_targets:
                    self._suspected_targets.discard("rms")
                    self._emit("heartbeat-rejoin", target="rms")
                self._emit(
                    "rms-restore", reason="gray-recovered", generation=cp.generation
                )
                self._telemetry_cp_state(0)
                if self.monitor is not None:
                    self.monitor.watch("rms", self.engine.now)
                self._dispatch_pending()

            self.engine.schedule(duration_s, recover)

        self.engine.schedule_at(time, gray)

    def _rms_cold_restore(self) -> None:
        """Cold-restart the control plane after its downtime.  The
        restarted RMS has no in-flight placement table, so every active
        placement is orphaned back into the queue."""
        cp = self.control_plane
        assert cp is not None
        now = self.engine.now
        orphans = list(self.active.values())
        cp.restore(now)
        self._down_at.pop("rms", None)
        if "rms" in self._suspected_targets:
            self._suspected_targets.discard("rms")
            self._emit("heartbeat-rejoin", target="rms")
        self._emit(
            "rms-restore",
            reason="cold-restart",
            generation=cp.generation,
            orphaned=len(orphans),
        )
        self._telemetry_cp_state(0)
        for entry in orphans:
            self._orphan(entry, reason="control-plane cold restart")
        if self.monitor is not None:
            self.monitor.watch("rms", now)
        self._dispatch_pending()

    def _rms_confirmed_down(self, now: float) -> None:
        """The detector confirmed the primary dark.  With a warm standby
        available the failover begins here; otherwise the cold-restart
        timer armed at crash time is the only way back."""
        cp = self.control_plane
        if cp is None or cp.dispatchable:
            # False confirmation of a healthy primary: the takeover
            # handshake finds it alive and the detector resets.
            self._false_suspicions += 1
            if self.monitor is not None:
                self.monitor.watch("rms", now)
            return
        down_at = self._down_at.get("rms")
        if down_at is not None:
            self._detection_latencies.append(now - down_at)
        if cp.can_failover():
            generation = cp.generation
            self._emit(
                "failover-begin",
                target="rms",
                generation=generation,
                standbys=cp.standbys_left,
            )
            assert self.failover is not None
            self.engine.schedule(
                self.failover.takeover_delay_s, lambda: self._promote(generation)
            )

    def _promote(self, expected_generation: int) -> None:
        """A warm standby finishes taking over as the new primary.  It
        adopts every placement whose lease is still valid and orphans
        the expired ones (without leases it adopts everything)."""
        cp = self.control_plane
        if cp is None or cp.generation != expected_generation or cp.dispatchable:
            return  # a restart or recovery got there first
        now = self.engine.now
        generation = cp.promote(now)
        self._down_at.pop("rms", None)
        orphans: list[_Entry] = []
        if self.failover is not None and self.failover.lease_s is not None:
            orphans = [e for e in self.active.values() if e.lease_expiry < now]
        self._emit(
            "failover-complete",
            target="rms",
            generation=generation,
            adopted=len(self.active) - len(orphans),
            orphaned=len(orphans),
        )
        self._telemetry_count(
            "sim_failovers_total", "standby promotions to primary"
        )
        self._telemetry_cp_state(0)
        for entry in orphans:
            self._leases_expired += 1
            node = (
                entry.placement.candidate.node_id
                if entry.placement is not None
                else None
            )
            self._emit(
                "lease-expire",
                entry.key,
                node=node,
                expired_at=round(entry.lease_expiry, 9),
            )
            self._orphan(entry, reason="lease expired during failover")
        if self.monitor is not None:
            self.monitor.watch("rms", now)
        self._dispatch_pending()

    def _orphan(self, entry: _Entry, *, reason: str) -> None:
        """Tear down a placement orphaned by control-plane loss and
        return the task to the queue.  Unlike :meth:`_fault` this does
        not consume retry budget or exclude the node -- the task did
        nothing wrong; the control plane lost track of it."""
        if entry.completed or entry.failed or entry.discarded:
            return  # pragma: no cover - terminal entries are not active
        placement = entry.placement
        if placement is None:
            return  # pragma: no cover - defensive
        replica = self._replicas.get(entry.key)
        if replica is not None:
            self._abort_replica(replica, action="abort")
        tm = self.metrics.tasks[entry.key]
        dispatched_at = tm.dispatch if tm.dispatch is not None else self.engine.now
        preserved = self._checkpoint_credit(entry, placement)
        wasted = max(0.0, self.engine.now - dispatched_at - preserved)
        slice_seconds = 0.0
        if placement.region_id is not None:
            slices, _ = self._region_slices(placement)
            slice_seconds = wasted * slices
        for handle in entry.events:
            handle.cancel()
        entry.events.clear()
        self._emit_slice_free(entry)
        self.rms.abort_placement(placement, clear_configuration=False)
        self.metrics.record_orphan(
            entry.key,
            self.engine.now,
            wasted_time_s=wasted,
            wasted_slice_seconds=slice_seconds,
        )
        self._emit(
            "orphan-recovered",
            entry.key,
            node=placement.candidate.node_id,
            reason=reason,
        )
        self._telemetry_count(
            "sim_orphans_total", "orphaned placements recovered into the queue"
        )
        if entry.is_probe and self.health is not None:
            self.health.abort_probe(placement.candidate.node_id)
        entry.is_probe = False
        entry.dispatched = False
        entry.placement = None
        self.active.pop(entry.key, None)
        if entry.job_id is not None:
            self.jss.mark_orphaned(
                entry.job_id, entry.task.task_id, time=self.engine.now
            )
        self._apply_checkpoint_resume(entry, placement, preserved)
        self.pending.append(entry)
        self.requeues += 1
        self._telemetry_sample()

    def _crash_with_detection(
        self, node_id: int, rejoin_after_s: float | None
    ) -> None:
        """A silent node death under the heartbeat layer.  The node's
        work stops *now*, but membership (and the fault handling in
        :meth:`_node_confirmed_down`) waits for the detector -- that
        window is the detection latency the failover layer bounds."""
        now = self.engine.now
        node = self.rms.node(node_id)
        site = self.rms.site_of(node_id)
        self._dead_nodes[node_id] = now
        self.metrics.record_node_down(node_id, now)
        for replica in self._replicas_on(node_id):
            self._abort_replica(replica, action="abort", clear_configuration=True)
        for entry in list(self.active.values()):
            if (
                entry.placement is not None
                and entry.placement.candidate.node_id == node_id
            ):
                for handle in entry.events:
                    handle.cancel()
                entry.events.clear()
        if rejoin_after_s is None:
            return

        def rejoin() -> None:
            if node_id in {n.node_id for n in self.rms.nodes}:
                # Rebooted before the detector confirmed: the node never
                # left the RMS, but everything it ran died with it.
                if node_id not in self._dead_nodes:
                    return  # pragma: no cover - defensive
                del self._dead_nodes[node_id]
                victims = [
                    e
                    for e in self.active.values()
                    if e.placement is not None
                    and e.placement.candidate.node_id == node_id
                ]
                for entry in victims:
                    self._fault(
                        entry,
                        reason=f"node {node_id} rebooted",
                        clear_configuration=True,
                    )
                for rpe in node.rpes:  # power-cycle: residents are gone
                    for region in rpe.fabric.regions:
                        if region.configuration is not None:
                            rpe.fabric.clear(region)
                    rpe.hosted_softcores.clear()
                self.metrics.record_node_up(node_id, self.engine.now)
                if self.monitor is not None:
                    if node_id in self._suspected_targets:
                        self._suspected_targets.discard(node_id)
                        self._emit("heartbeat-rejoin", target=node_id)
                    self.monitor.watch(node_id, self.engine.now)
                self._dispatch_pending()
                return
            # Death was confirmed and the node evicted: cold rejoin.
            self.rms.register_node(node, site=site)
            if self.health is not None:
                self.health.register_node(node_id)
            self.metrics.record_node_up(node_id, self.engine.now)
            self.metrics.trace.append((self.engine.now, "node-join", node_id))
            self._emit(
                "node-join",
                node=node_id,
                gpps=len(node.gpps),
                rpes=len(node.rpes),
                rejoin=True,
            )
            if self.monitor is not None:
                self.monitor.watch(node_id, self.engine.now)
            self._dispatch_pending()

        self.engine.schedule(rejoin_after_s, rejoin)

    def _node_confirmed_down(self, node_id: int, now: float) -> None:
        """The detector confirmed a node death: only now does the RMS
        act -- fault the stalled work, evict the node, wipe its fabric."""
        assert self.monitor is not None
        if node_id not in {n.node_id for n in self.rms.nodes}:
            self.monitor.forget(node_id)  # pragma: no cover - left already
            return
        died_at = self._dead_nodes.pop(node_id, None)
        if died_at is not None:
            self._detection_latencies.append(now - died_at)
        else:
            # Confirmed on dropped heartbeats alone: a healthy node is
            # wrongly evicted -- the detector's false-positive cost.
            self._false_suspicions += 1
            self.metrics.record_node_down(node_id, now)
        for replica in self._replicas_on(node_id):
            self._abort_replica(replica, action="abort", clear_configuration=True)
        victims = [
            e
            for e in self.active.values()
            if e.placement is not None
            and e.placement.candidate.node_id == node_id
        ]
        for entry in victims:
            self._fault(
                entry,
                reason=f"node {node_id} loss confirmed by heartbeat detector",
                clear_configuration=True,
            )
        node = self.rms.unregister_node(node_id)
        for rpe in node.rpes:  # power-cycle: resident configs are gone
            for region in rpe.fabric.regions:
                if region.configuration is not None:
                    rpe.fabric.clear(region)
            rpe.hosted_softcores.clear()
        if self.health is not None:
            self.health.record_detected_failure(node_id, now)
        self.metrics.trace.append((now, "node-leave", node_id))
        self._emit("node-leave", node=node_id, crash=True, detected=True)
        self.monitor.forget(node_id)
        self._dispatch_pending()

    def _hb_suspect(self, target: object, now: float) -> None:
        assert self.monitor is not None
        self._suspected_targets.add(target)
        self._emit(
            "heartbeat-suspect",
            target=target,
            suspicion=round(self.monitor.suspicion(target, now), 6),
        )
        self._telemetry_count(
            "sim_suspicions_total", "heartbeat suspicions raised"
        )

    def _hb_confirm(self, target: object, now: float) -> None:
        self._suspected_targets.discard(target)
        self._emit("heartbeat-confirm", target=target)
        if target == "rms":
            self._rms_confirmed_down(now)
        else:
            self._node_confirmed_down(target, now)

    def _heartbeat_tick(self) -> None:
        """One heartbeat round: arrivals first (the primary, then nodes
        in id order -- a fixed order keeps the loss draws
        deterministic), then a detector pass, then re-arm while
        anything can still happen."""
        monitor = self.monitor
        cp = self.control_plane
        assert monitor is not None and cp is not None and self.failover is not None
        hb = self.failover.heartbeat
        assert hb is not None
        now = self.engine.now
        faults = self.faults
        if cp.dispatchable:
            if not (faults is not None and faults.heartbeat_should_drop()):
                cleared = monitor.heartbeat("rms", now)
                if cleared == SUSPECT:
                    self._false_suspicions += 1
                    self._suspected_targets.discard("rms")
                    self._emit("heartbeat-rejoin", target="rms")
            if self.failover.lease_s is not None and self.active:
                # Leases renew on the heartbeat round while the control
                # plane is up; a dark control plane cannot renew, which
                # is exactly what lets a new primary age out orphans.
                expiry = now + self.failover.lease_s
                for entry in self.active.values():
                    entry.lease_expiry = expiry
        for node in sorted(self.rms.nodes, key=lambda n: n.node_id):
            node_id = node.node_id
            if node_id in self._dead_nodes or not monitor.watched(node_id):
                continue
            if faults is not None and faults.heartbeat_should_drop():
                continue  # lost in transit
            cleared = monitor.heartbeat(node_id, now)
            if cleared == SUSPECT:
                self._false_suspicions += 1
                self._suspected_targets.discard(node_id)
                self._emit("heartbeat-rejoin", target=node_id)
        for target in ("rms", *sorted(t for t in monitor.state if t != "rms")):
            worsened = monitor.evaluate(target, now)
            if worsened is None:
                continue
            if worsened == SUSPECT:
                self._hb_suspect(target, now)
            else:
                # A jump straight to DOWN still surfaces the suspect
                # step first so the trace lifecycle holds.
                if target not in self._suspected_targets:
                    self._hb_suspect(target, now)
                self._hb_confirm(target, now)
        if (
            self.engine.peek_time() is not None
            or self._dead_nodes
            or self._suspected_targets
            or not cp.dispatchable
        ):
            self.engine.schedule(hb.interval_s, self._heartbeat_tick)

    def schedule_link_degrade(
        self, time: float, a: int, b: int, *, factor: float, duration_s: float
    ) -> None:
        """Degrade the a-b link's bandwidth by *factor* for
        *duration_s*, then restore it.  Already-planned placements keep
        their prices (transfers were priced at dispatch); only new
        placements see the degraded link."""
        network = self.rms.network
        if network is None:
            return

        pair = frozenset((a, b))

        def degrade() -> None:
            if pair in self._degraded_pairs:
                return  # already degraded; overlapping draws collapse
            try:
                healthy = network.degrade(a, b, factor=factor)
            except NetworkError:
                return  # link currently absent (severed / site removed)
            self._degraded_pairs.add(pair)
            if self.faults is not None:
                self.faults.injected_link_faults += 1
            self._emit("link-fault", a=a, b=b, factor=factor)

            def heal() -> None:
                self._degraded_pairs.discard(pair)
                if network.graph.has_edge(a, b):
                    network.restore(a, b, healthy)
                self._emit("link-restore", a=a, b=b)
                self._dispatch_pending()

            self.engine.schedule(duration_s, heal)

        self.engine.schedule_at(time, degrade)

    def schedule_partition(
        self,
        time: float,
        group_a: list[int],
        group_b: list[int],
        *,
        heal_at_s: float,
    ) -> None:
        """Sever every direct link between the two node groups for the
        window [time, heal_at_s).  Placements whose input staging has no
        finite route are deferred (not errored) until the heal."""
        network = self.rms.network
        if network is None:
            return
        if heal_at_s <= time:
            raise ValueError("partition must heal after it starts")
        saved: list[tuple[int, int, object]] = []

        def split() -> None:
            for a in group_a:
                for b in group_b:
                    if network.graph.has_edge(a, b):
                        saved.append((a, b, network.sever(a, b)))
            self._emit("link-fault", a=-1, b=-1, partition=True, cut=len(saved))

            def heal() -> None:
                for a, b, link in saved:
                    network.restore(a, b, link)
                self._emit("link-restore", a=-1, b=-1)
                self._dispatch_pending()

            self.engine.schedule_at(heal_at_s, heal)

        self.engine.schedule_at(time, split)

    # ------------------------------------------------------------------
    # Fault handling: retry / backoff / fallback / terminal failure
    # ------------------------------------------------------------------
    def _fault(
        self, entry: _Entry, *, reason: str, clear_configuration: bool
    ) -> None:
        """A fault destroyed *entry*'s placement: release the resources,
        account the wasted work, and route the task into the retry
        policy."""
        prof = self.hostprof
        if prof is not None:
            prof.enter("faults")
        try:
            self._fault_inner(
                entry, reason=reason, clear_configuration=clear_configuration
            )
        finally:
            if prof is not None:
                prof.leave()

    def _fault_inner(
        self, entry: _Entry, *, reason: str, clear_configuration: bool
    ) -> None:
        placement = entry.placement
        assert placement is not None
        replica = self._replicas.get(entry.key)
        if replica is not None:
            # Speculation targets stragglers, not crashes: a faulted
            # primary recovers through the retry machinery and its
            # replica is scrapped (the replica's node is fine, so its
            # fabric state stays).
            self._abort_replica(replica, action="abort")
        tm = self.metrics.tasks[entry.key]
        dispatched_at = tm.dispatch if tm.dispatch is not None else self.engine.now
        elapsed = self.engine.now - dispatched_at
        preserved = self._checkpoint_credit(entry, placement)
        wasted = max(0.0, elapsed - preserved)
        slice_seconds = 0.0
        if placement.region_id is not None:
            slices, _ = self._region_slices(placement)
            slice_seconds = wasted * slices
        for handle in entry.events:
            handle.cancel()
        entry.events.clear()
        self._emit_slice_free(entry)
        self.rms.abort_placement(placement, clear_configuration=clear_configuration)
        self.metrics.record_fault(
            entry.key,
            self.engine.now,
            reason=reason,
            wasted_time_s=wasted,
            wasted_slice_seconds=slice_seconds,
        )
        self._emit(
            "fault",
            entry.key,
            node=placement.candidate.node_id,
            reason=reason,
        )
        self._telemetry_count(
            "sim_faults_total", "placements destroyed by injected faults"
        )
        self._health_failure(entry, placement.candidate.node_id)
        entry.attempts += 1
        entry.excluded_nodes.add(placement.candidate.node_id)
        entry.failure_reason = reason
        entry.dispatched = False
        entry.placement = None
        self.active.pop(entry.key, None)
        self._apply_checkpoint_resume(entry, placement, preserved)
        self._telemetry_sample()
        self._after_fault(entry)

    def _after_fault(self, entry: _Entry) -> None:
        """Apply the retry policy to a freshly faulted task."""
        policy = self.retry
        if entry.attempts < policy.max_attempts:
            self._schedule_requeue(entry, kind="retry")
            return
        task = entry.task
        can_fall_back = (
            policy.gpp_fallback
            and not entry.fell_back
            and task.exec_req.node_type is not PEClass.GPP
            and task.effective_workload_mi > 0
        )
        if can_fall_back:
            # Graceful degradation (Section III-A software path): same
            # workload, GPP-class requirements, a fresh retry budget.
            entry.task = replace(
                task,
                exec_req=ExecReq(
                    node_type=PEClass.GPP,
                    constraints=(),
                    artifacts=task.exec_req.artifacts,
                ),
            )
            entry.fell_back = True
            entry.attempts = 0
            entry.excluded_nodes.clear()
            self._schedule_requeue(entry, kind="fallback")
            return
        self._fail_terminally(entry)

    def _schedule_requeue(self, entry: _Entry, *, kind: str) -> None:
        """Return *entry* to the queue after its exponential backoff."""
        delay = self.retry.backoff_s(max(1, entry.attempts))
        entry.in_backoff = True
        if self.telemetry is not None:
            self.telemetry.gauge(
                "sim_tasks_in_backoff", "tasks waiting out a retry backoff"
            ).inc()

        def requeue() -> None:
            entry.in_backoff = False
            if self.telemetry is not None:
                self.telemetry.gauge(
                    "sim_tasks_in_backoff", "tasks waiting out a retry backoff"
                ).dec()
            if entry.discarded or entry.failed:
                return  # abandoned while waiting out the backoff
            if kind == "retry":
                self.metrics.record_retry(entry.key, self.engine.now)
                self._telemetry_count("sim_retries_total", "retry requeues")
                self._emit("retry", entry.key, attempt=entry.attempts + 1)
            else:
                self.metrics.record_fallback(entry.key, self.engine.now)
                self._telemetry_count(
                    "sim_fallbacks_total", "GPP graceful-degradation fallbacks"
                )
                self._emit("fallback", entry.key)
            self.pending.append(entry)
            self.requeues += 1
            self._dispatch_pending()

        self.engine.schedule(delay, requeue)

    def _fail_terminally(self, entry: _Entry) -> None:
        """Retry budget exhausted and no fallback left: the task fails,
        terminally and exactly once."""
        entry.failed = True
        for handle in entry.deadline_events:
            handle.cancel()
        entry.deadline_events.clear()
        reason = entry.failure_reason or "fault retry budget exhausted"
        self.metrics.record_failed(entry.key, self.engine.now, reason=reason)
        if self.slo is not None:
            self.slo.observe_error(
                tenant=entry.task.tenant, priority=entry.task.priority
            )
        self._emit("task-failed", entry.key, reason=reason, attempts=entry.attempts)
        if entry.job_id is not None:
            self.jss.mark_failed(
                entry.job_id,
                entry.task.task_id,
                time=self.engine.now,
                reason=reason,
                attempts=entry.attempts,
            )

    # ------------------------------------------------------------------
    # Adaptive resilience: health feedback and circuit breakers
    # ------------------------------------------------------------------
    def _health_failure(self, entry: _Entry, node_id: int) -> None:
        """Feed a placement loss into the node's health score; emits
        ``quarantine`` and schedules a queue wake-up when the breaker
        trips (nothing else re-runs tasks deferred by a quarantine)."""
        if self.health is None:
            return
        transition = self.health.record_failure(
            node_id, self.engine.now, probe=entry.is_probe
        )
        entry.is_probe = False
        if transition == "open":
            health = self.health.node(node_id)
            self.metrics.trace.append((self.engine.now, "quarantine", node_id))
            self._emit(
                "quarantine",
                node=node_id,
                phase="open",
                score=round(health.score, 9),
                episode=health.quarantine_episodes,
            )
            self.engine.schedule(
                self.health.policy.open_duration_s, self._dispatch_pending
            )

    def _health_success(self, entry: _Entry, node_id: int) -> None:
        if self.health is None:
            return
        transition = self.health.record_success(
            node_id, self.engine.now, probe=entry.is_probe
        )
        entry.is_probe = False
        if transition == "close":
            self.metrics.trace.append((self.engine.now, "quarantine-close", node_id))
            self._emit("quarantine", node=node_id, phase="close")

    # ------------------------------------------------------------------
    # Adaptive resilience: deadline watchdog
    # ------------------------------------------------------------------
    def _arm_watchdog(self, entry: _Entry) -> None:
        """Schedule the soft/hard deadline timers at arrival.  Explicit
        per-task budgets win; otherwise they derive from the estimate."""
        spec = self.resilience.deadlines if self.resilience is not None else None
        if spec is None:
            return
        task = entry.task
        soft = (
            task.soft_deadline_s
            if task.soft_deadline_s is not None
            else spec.soft_deadline_s(task.t_estimated)
        )
        hard = (
            task.hard_deadline_s
            if task.hard_deadline_s is not None
            else spec.hard_deadline_s(task.t_estimated)
        )
        hard = max(hard, soft)
        entry.deadline_events.append(
            self.engine.schedule(soft, lambda: self._soft_deadline(entry, soft))
        )
        entry.deadline_events.append(
            self.engine.schedule(hard, lambda: self._hard_deadline(entry, hard))
        )

    def _soft_deadline(self, entry: _Entry, budget_s: float) -> None:
        if entry.completed or entry.discarded or entry.failed:
            return
        self.metrics.record_deadline_miss(entry.key, self.engine.now, hard=False)
        self._telemetry_count(
            "sim_deadline_misses_total", "deadline watchdog firings",
            deadline="soft",
        )
        spec = self.resilience.deadlines
        assert spec is not None
        if (
            spec.reschedule
            and self.active.get(entry.key) is entry
            and entry.placement is not None
        ):
            self._emit(
                "timeout",
                entry.key,
                deadline="soft",
                action="requeue",
                node=entry.placement.candidate.node_id,
                budget=budget_s,
            )
            self._cancel_placement(
                entry, reason=f"soft deadline of {budget_s:.3f}s exceeded"
            )
            # Soft cancels do not consume a retry attempt: they are a
            # policy choice, not a fault.  The slow node is excluded,
            # so the requeue lands elsewhere when anywhere else exists.
            self._schedule_requeue(entry, kind="retry")
        else:
            self._emit("timeout", entry.key, deadline="soft", action="warn",
                       budget=budget_s)

    def _hard_deadline(self, entry: _Entry, budget_s: float) -> None:
        if entry.completed or entry.discarded or entry.failed:
            return
        self.metrics.record_deadline_miss(entry.key, self.engine.now, hard=True)
        self._telemetry_count(
            "sim_deadline_misses_total", "deadline watchdog firings",
            deadline="hard",
        )
        reason = f"deadline_exceeded: hard deadline of {budget_s:.3f}s missed"
        if self.active.get(entry.key) is entry and entry.placement is not None:
            self._emit(
                "timeout",
                entry.key,
                deadline="hard",
                action="fail",
                node=entry.placement.candidate.node_id,
                budget=budget_s,
            )
            self._cancel_placement(entry, reason=reason)
        else:
            self._emit("timeout", entry.key, deadline="hard", action="fail",
                       budget=budget_s)
            if entry in self.pending:
                self.pending.remove(entry)
            replica = self._replicas.get(entry.key)
            if replica is not None:
                self._abort_replica(replica, action="abort")
        entry.failure_reason = reason
        self._fail_terminally(entry)

    def _cancel_placement(self, entry: _Entry, *, reason: str) -> None:
        """Watchdog teardown of a live placement: like :meth:`_fault`
        but accounted as a deadline miss, not a fault event.  The
        caller emits the ``timeout`` event first (it performs the
        checker's state transition) and decides what happens next
        (requeue or terminal failure)."""
        placement = entry.placement
        assert placement is not None
        replica = self._replicas.get(entry.key)
        if replica is not None:
            self._abort_replica(replica, action="abort")
        tm = self.metrics.tasks[entry.key]
        dispatched_at = tm.dispatch if tm.dispatch is not None else self.engine.now
        elapsed = self.engine.now - dispatched_at
        preserved = self._checkpoint_credit(entry, placement)
        wasted = max(0.0, elapsed - preserved)
        slice_seconds = 0.0
        if placement.region_id is not None:
            slices, _ = self._region_slices(placement)
            slice_seconds = wasted * slices
        for handle in entry.events:
            handle.cancel()
        entry.events.clear()
        self._emit_slice_free(entry)
        self.rms.abort_placement(placement, clear_configuration=False)
        self.metrics.record_wasted(
            entry.key,
            self.engine.now,
            wasted_time_s=wasted,
            wasted_slice_seconds=slice_seconds,
        )
        self._health_failure(entry, placement.candidate.node_id)
        entry.excluded_nodes.add(placement.candidate.node_id)
        entry.failure_reason = reason
        entry.dispatched = False
        entry.placement = None
        self.active.pop(entry.key, None)
        self._apply_checkpoint_resume(entry, placement, preserved)
        self._telemetry_sample()

    # ------------------------------------------------------------------
    # Adaptive resilience: checkpoint/restart + migration
    # ------------------------------------------------------------------
    def _checkpoint_credit(self, entry: _Entry, placement: Placement) -> float:
        """Execution seconds (on *placement*) preserved by the newest
        checkpoint; zero without checkpointing."""
        if entry.checkpoint_frac <= 0.0:
            return 0.0
        return entry.checkpoint_frac * placement.exec_time_s

    def _apply_checkpoint_resume(
        self, entry: _Entry, placement: Placement, preserved_s: float
    ) -> None:
        """Shrink a fault/timeout-hit task to its un-checkpointed
        remainder so the next placement only redoes the lost tail.
        Fractions (not seconds) transplant across PEs with different
        speeds -- the same scaling idiom as stream chunking and the
        GPP fallback."""
        if entry.checkpoint_frac <= 0.0:
            return
        remaining = 1.0 - entry.checkpoint_frac
        task = entry.task
        entry.task = replace(
            task,
            t_estimated=task.t_estimated * remaining,
            workload_mi=task.effective_workload_mi * remaining,
        )
        entry.resumed_from = placement.candidate.node_id
        entry.checkpoint_frac = 0.0
        self.metrics.record_checkpoint_restore(entry.key, preserved_s)

    def _schedule_checkpoints(self, entry: _Entry, placement: Placement) -> float:
        """Schedule progress snapshots for a fabric-hosted execution;
        returns the total checkpoint overhead added to the execution
        time.  Handles live in ``entry.events`` so a fault cancels any
        snapshots it outran."""
        spec = self.resilience.checkpoint if self.resilience is not None else None
        if (
            spec is None
            or placement.region_id is None
            or placement.exec_time_s <= spec.interval_s
        ):
            return 0.0
        # Snapshots at k * interval of *progress*, strictly before the
        # end of execution (a checkpoint at completion is useless).
        count = int((placement.exec_time_s - 1e-12) // spec.interval_s)
        for k in range(1, count + 1):
            frac = (k * spec.interval_s) / placement.exec_time_s
            # The snapshot becomes durable after its own overhead.
            at = k * spec.interval_s + k * spec.overhead_s
            entry.events.append(
                self.engine.schedule(at, self._make_checkpoint(entry, frac))
            )
        return count * spec.overhead_s

    def _make_checkpoint(self, entry: _Entry, frac: float) -> Callable[[], None]:
        def take() -> None:
            placement = entry.placement
            if placement is None:  # pragma: no cover - defensive
                return
            entry.checkpoint_frac = frac
            spec = self.resilience.checkpoint
            assert spec is not None
            self.metrics.record_checkpoint(
                entry.key, self.engine.now, overhead_s=spec.overhead_s
            )
            self._telemetry_count(
                "sim_checkpoints_total", "progress snapshots taken"
            )
            self._telemetry_count(
                "sim_checkpoint_overhead_seconds_total",
                "execution seconds spent writing snapshots",
                spec.overhead_s,
            )
            self._emit(
                "checkpoint",
                entry.key,
                node=placement.candidate.node_id,
                region=placement.region_id,
                frac=frac,
            )

        return take

    # ------------------------------------------------------------------
    # Adaptive resilience: speculative replicas
    # ------------------------------------------------------------------
    def _replicas_on(self, node_id: int) -> list[_Entry]:
        return [
            r
            for r in list(self._replicas.values())
            if r.placement is not None and r.placement.candidate.node_id == node_id
        ]

    def _data_sites_for(self, entry: _Entry) -> dict[int, int] | None:
        sites = {
            data.source_task_id: self._output_sites[(entry.job_id, data.source_task_id)]
            for data in entry.task.data_in
            if (entry.job_id, data.source_task_id) in self._output_sites
        }
        return sites or None

    def _maybe_speculate(self, entry: _Entry) -> None:
        """The straggler timer fired: the primary has exceeded its
        expected cost by the configured factor and still runs.  Launch
        a shadow replica on a different, healthy node -- first finisher
        wins.  Replicas draw no fault-model randomness (no config-fault
        or SEU draws), so speculation never perturbs the seeded
        streams."""
        if (
            entry.completed
            or entry.failed
            or entry.discarded
            or self.active.get(entry.key) is not entry
            or entry.placement is None
            or entry.key in self._replicas
            # Brownout stage 1+: speculation is the first luxury cut.
            or (self.admission is not None and self.admission.stage >= 1)
            # A dark control plane cannot make placement decisions.
            or (self.control_plane is not None and not self.control_plane.dispatchable)
        ):
            return
        primary_node = entry.placement.candidate.node_id
        exclude = {primary_node} | entry.excluded_nodes
        try:
            placement = self.rms.plan_placement(
                entry.task,
                data_sites=self._data_sites_for(entry),
                exclude_nodes=exclude,
                now=self.engine.now,
            )
        except SchedulingError:
            return
        if placement is None or not math.isfinite(placement.total_time_s):
            return
        self.rms.commit(placement)
        replica = _Entry(
            key=entry.key,
            task=entry.task,
            job_id=entry.job_id,
            silent=True,
            is_replica=True,
            primary=entry,
            launched_at=self.engine.now,
        )
        replica.dispatched = True
        replica.placement = placement
        self._replicas[entry.key] = replica
        self.metrics.record_speculation(entry.key, self.engine.now)
        self._telemetry_count(
            "sim_speculations_total", "speculative replicas launched"
        )
        self._emit(
            "speculate",
            entry.key,
            action="launch",
            node=placement.candidate.node_id,
            primary_node=primary_node,
        )
        if self.tracer is not None and placement.region_id is not None:
            slices, capacity = self._region_slices(placement)
            self._emit(
                "slice-alloc",
                entry.key,
                node=placement.candidate.node_id,
                resource=placement.candidate.resource_id,
                region=placement.region_id,
                slices=slices,
                capacity=capacity,
            )
        replica.events.append(
            self.engine.schedule(
                placement.setup_time_s, lambda: self._replica_start(replica)
            )
        )

    def _replica_start(self, replica: _Entry) -> None:
        placement = replica.placement
        assert placement is not None
        self.rms.begin_execution(placement)
        replica.events.append(
            self.engine.schedule(
                placement.exec_time_s, lambda: self._replica_finish(replica)
            )
        )

    def _replica_finish(self, replica: _Entry) -> None:
        """The replica beat the primary: tear the straggler down and
        complete the task on the replica's placement."""
        entry = replica.primary
        assert entry is not None
        self._replicas.pop(entry.key, None)
        if self.active.get(entry.key) is not entry or entry.placement is None:
            # The primary vanished between scheduling and firing
            # (faults kill replicas, so this cannot normally happen).
            self._abort_replica(replica, action="abort")  # pragma: no cover
            return
        primary_placement = entry.placement
        tm = self.metrics.tasks[entry.key]
        dispatched_at = tm.dispatch if tm.dispatch is not None else self.engine.now
        for handle in entry.events:
            handle.cancel()
        entry.events.clear()
        self._emit_slice_free(entry)
        self.rms.abort_placement(primary_placement, clear_configuration=False)
        if entry.is_probe and self.health is not None:
            # Slow, not faulty: return the probe slot without judgment.
            self.health.abort_probe(primary_placement.candidate.node_id)
        entry.is_probe = False
        self.metrics.record_speculation_result(
            entry.key,
            self.engine.now,
            win=True,
            wasted_s=max(0.0, self.engine.now - dispatched_at),
            node_id=replica.placement.candidate.node_id,
            resource_index=replica.placement.candidate.resource_id,
        )
        self._emit(
            "speculate",
            entry.key,
            action="win",
            node=replica.placement.candidate.node_id,
            loser=primary_placement.candidate.node_id,
        )
        if tm.start is None:
            # The primary never reached execution (long setup): the
            # task-level lifecycle still needs its start transition.
            self.metrics.record_start(entry.key, self.engine.now)
            self._emit("start", entry.key,
                       node=replica.placement.candidate.node_id)
            if entry.job_id is not None:
                self.jss.mark_started(
                    entry.job_id,
                    entry.task.task_id,
                    time=self.engine.now,
                    node_id=replica.placement.candidate.node_id,
                )
        # Complete on the replica's placement through the normal path.
        entry.placement = replica.placement
        self._finish(entry)

    def _abort_replica(
        self, replica: _Entry, *, action: str, clear_configuration: bool = False
    ) -> None:
        """Destroy a replica (lost the race, primary faulted, or its
        node died).  Replicas never retry; the primary's lifecycle is
        untouched."""
        self._replicas.pop(replica.key, None)
        for handle in replica.events:
            handle.cancel()
        replica.events.clear()
        placement = replica.placement
        if placement is None:  # pragma: no cover - defensive
            return
        self._emit_slice_free(replica)
        self.rms.abort_placement(placement, clear_configuration=clear_configuration)
        self.metrics.record_speculation_result(
            replica.key,
            self.engine.now,
            win=False,
            wasted_s=max(0.0, self.engine.now - replica.launched_at),
        )
        self._emit(
            "speculate",
            replica.key,
            action=action,
            node=placement.candidate.node_id,
        )
        replica.placement = None

    # ------------------------------------------------------------------
    # Core event handlers
    # ------------------------------------------------------------------
    def _arrive(
        self,
        task: Task,
        *,
        job_id: int | None = None,
        key: object | None = None,
        on_complete: Callable[[_Entry], None] | None = None,
        silent: bool = False,
    ) -> None:
        entry = _Entry(
            key=key if key is not None else task.task_id,
            task=task,
            job_id=job_id,
            on_complete=on_complete,
            silent=silent,
        )
        self.metrics.record_arrival(
            entry.key, self.engine.now, task.function, tenant=task.tenant
        )
        if self.tracer is not None:
            # Priority/tenant ride along only when set, so traces of
            # untagged workloads are byte-identical to pre-overload runs.
            extra: dict[str, object] = {}
            if task.priority:
                extra["priority"] = task.priority
            if task.tenant:
                extra["tenant"] = task.tenant
            deps = sorted(task.predecessor_ids)
            if deps:
                # Task-graph edges feed critical-path extraction in
                # sim/analysis.py; synthetic workloads have none, so
                # their traces stay byte-identical.
                extra["deps"] = deps
            self._emit(
                "submit",
                entry.key,
                function=task.function,
                pe_class=task.exec_req.node_type.value,
                **extra,
            )
        if self.admission is None:
            self._admit(entry)
        else:
            self._offer(entry)
        if self.slo is not None:
            self.slo.observe_queue(len(self.pending))

    def _admit(self, entry: _Entry) -> None:
        """Accept a submission into the pending queue (the entire
        pre-admission arrival tail lives here unchanged)."""
        self.pending.append(entry)
        self._arm_watchdog(entry)
        if self.discard_after_s is not None:
            deadline = self.discard_after_s

            def maybe_discard() -> None:
                if not entry.dispatched and not entry.discarded and not entry.failed:
                    entry.discarded = True
                    if entry in self.pending:  # may be waiting out a backoff
                        self.pending.remove(entry)
                    for handle in entry.deadline_events:
                        handle.cancel()
                    entry.deadline_events.clear()
                    self.metrics.record_discard(entry.key, self.engine.now)
                    self._emit("discard", entry.key)
                    if entry.job_id is not None and not entry.silent:
                        self.jss.mark_failed(
                            entry.job_id,
                            entry.task.task_id,
                            time=self.engine.now,
                            reason=entry.failure_reason
                            or f"discarded after {deadline:g}s pending",
                            attempts=entry.attempts if entry.attempts else None,
                        )
                    self._telemetry_sample()

            self.engine.schedule(deadline, maybe_discard)
        self._dispatch_pending()

    # ------------------------------------------------------------------
    # Overload protection (no-ops while ``admission`` is None)
    # ------------------------------------------------------------------
    def _offer(self, entry: _Entry) -> None:
        """Route a fresh submission through admission control."""
        ctl = self.admission
        assert ctl is not None
        decision, reason = ctl.decide_submit(self.engine.now, len(self.pending))
        if decision == ADMIT:
            ctl.admitted += 1
            self._emit("admit", entry.key, depth=len(self.pending))
            self._admit(entry)
        elif decision == DEFER:
            self._defer(entry, reason)
        else:
            self._shed(entry, reason)

    def _defer(self, entry: _Entry, reason: str) -> None:
        """Backpressure: park the submission outside the queue and
        re-offer it after the configured delay."""
        ctl = self.admission
        assert ctl is not None
        queue = ctl.spec.queue
        assert queue is not None
        entry.defers += 1
        ctl.deferrals += 1
        self.metrics.record_defer(entry.key, self.engine.now)
        self._telemetry_count(
            "sim_deferrals_total", "submissions deferred by backpressure"
        )
        self._emit(
            "defer",
            entry.key,
            reason=reason,
            attempt=entry.defers,
            depth=len(self.pending),
        )
        self.engine.schedule(queue.defer_delay_s, lambda: self._reoffer(entry))

    def _reoffer(self, entry: _Entry) -> None:
        """A deferred submission retries admission."""
        if entry.discarded or entry.failed:
            return  # abandoned while parked
        ctl = self.admission
        assert ctl is not None
        decision, reason = ctl.decide_reoffer(len(self.pending), entry.defers)
        if decision == ADMIT:
            ctl.admitted += 1
            self._emit(
                "admit", entry.key, depth=len(self.pending), deferred=entry.defers
            )
            self._admit(entry)
        elif decision == DEFER:
            self._defer(entry, reason)
        else:
            self._shed(entry, reason)

    def _shed(self, entry: _Entry, reason: str) -> None:
        """Terminally reject a submission (admission refusal or
        brownout load shedding).  ``discarded`` is set too so every
        existing timer guard (watchdog, discard, backoff requeue)
        already skips shed entries."""
        ctl = self.admission
        assert ctl is not None
        entry.discarded = True
        entry.shed = True
        if entry in self.pending:
            self.pending.remove(entry)
        for handle in entry.deadline_events:
            handle.cancel()
        entry.deadline_events.clear()
        ctl.shed += 1
        self.metrics.record_shed(entry.key, self.engine.now, reason=reason)
        self._telemetry_count(
            "sim_sheds_total", "submissions shed by overload protection",
            reason=reason,
        )
        if self.slo is not None:
            self.slo.observe_error(
                tenant=entry.task.tenant, priority=entry.task.priority
            )
            self.slo.observe_queue(len(self.pending))
        self._emit("shed", entry.key, reason=reason)
        if entry.job_id is not None and not entry.silent:
            self.jss.mark_failed(
                entry.job_id,
                entry.task.task_id,
                time=self.engine.now,
                reason=f"shed: {reason}",
            )
        self._telemetry_sample()

    def _shed_excess(self) -> None:
        """Brownout stage 3: shed queued work down to the recovery
        watermark, lowest priority first, newest first within a
        priority class (oldest submissions have waited longest and are
        closest to service)."""
        ctl = self.admission
        assert ctl is not None
        brownout = ctl.spec.brownout
        assert brownout is not None
        excess = len(self.pending) - brownout.exit_pending
        if excess <= 0:
            return
        order = sorted(
            range(len(self.pending)),
            key=lambda i: (self.pending[i].task.priority, -i),
        )
        # Materialize victims before shedding: _shed removes from
        # self.pending, which would shift the remaining indices.
        victims = [self.pending[i] for i in order[:excess]]
        for victim in victims:
            self._shed(victim, "brownout")

    def _admission_observe(self) -> None:
        """Feed the live queue depth into the brownout controller and
        act on any transition.  Runs after every dispatch round and on
        scheduled dwell reviews; the review chain only persists while a
        transition is actually pending, so a drained grid always lets
        the engine terminate."""
        ctl = self.admission
        assert ctl is not None
        if ctl.spec.brownout is None:
            return
        transition = ctl.observe(self.engine.now, len(self.pending))
        if transition is not None:
            old, new = transition
            action = "escalate" if new > old else "recover"
            self._emit(
                "brownout",
                action=action,
                stage=new,
                depth=len(self.pending),
            )
            if self.telemetry is not None:
                self.telemetry.gauge(
                    "sim_brownout_stage",
                    "current brownout degradation stage (0 = healthy)",
                ).set(new)
        if ctl.stage >= 3:
            self._shed_excess()
        at = ctl.next_review()
        if at is not None and not ctl.review_scheduled:
            ctl.review_scheduled = True
            self.engine.schedule(
                max(0.0, at - self.engine.now), self._admission_review
            )

    def _admission_review(self) -> None:
        ctl = self.admission
        assert ctl is not None
        ctl.review_scheduled = False
        self._admission_observe()

    def _dispatch_pending(self) -> None:
        """One FIFO pass over the queue; each successful dispatch
        immediately reserves resources, so later entries see the
        updated state.

        The queue is rebuilt in one pass instead of ``list.remove``-ing
        each dispatched entry, which was quadratic in queue depth.
        ``_try_dispatch`` never mutates ``self.pending`` synchronously
        (faults and completions arrive via engine events), so swapping
        in the kept list afterwards is safe.
        """
        if self.control_plane is not None and not self.control_plane.dispatchable:
            # The control plane is dark: no placement decisions are
            # possible.  The queue waits for the failover / restart
            # handler, which re-runs this pass on recovery.
            self._telemetry_sample()
            if self.admission is not None:
                self._admission_observe()
            return
        prof = self.hostprof
        if prof is not None:
            prof.enter("dispatch")
        try:
            kept: list[_Entry] = []
            for entry in self.pending:
                if entry.discarded or entry.dispatched:
                    continue
                if not self._try_dispatch(entry):
                    kept.append(entry)
            self.pending = kept
        finally:
            if prof is not None:
                prof.leave()
        self._telemetry_sample()
        if self.admission is not None:
            self._admission_observe()
        if self.slo is not None:
            self.slo.observe_queue(len(self.pending))

    def _try_dispatch(self, entry: _Entry) -> bool:
        if (
            self.admission is not None
            and self.admission.stage >= 2
            and entry.task.priority < 0
            and not entry.fell_back
            and entry.task.exec_req.node_type is not PEClass.GPP
            and entry.task.effective_workload_mi > 0
        ):
            # Brownout stage 2: low-priority work is forced onto the
            # software path before placement -- same graceful-degradation
            # rewrite as the fault-recovery GPP fallback.
            task = entry.task
            entry.task = replace(
                task,
                exec_req=ExecReq(
                    node_type=PEClass.GPP,
                    constraints=(),
                    artifacts=task.exec_req.artifacts,
                ),
            )
            entry.fell_back = True
            self.admission.degraded += 1
            self.metrics.record_degrade(entry.key, self.engine.now)
            self._telemetry_count(
                "sim_degrades_total",
                "low-priority tasks forced to GPP by brownout",
            )
            self._emit("degrade", entry.key, stage=self.admission.stage)
        data_sites = self._data_sites_for(entry)
        exclude = entry.excluded_nodes
        if self._suspected_targets:
            # Don't throw new work at nodes the detector already
            # suspects; the starvation guard below may still forgive
            # this when there is nowhere else to go.
            suspects = {t for t in self._suspected_targets if t != "rms"}
            if suspects:
                exclude = exclude | suspects
        prof = self.hostprof
        if prof is not None:
            prof.enter("matchmaking")
        try:
            placement = self.rms.plan_placement(
                entry.task,
                data_sites=data_sites,
                exclude_nodes=exclude or None,
                now=self.engine.now,
            )
            if placement is None and exclude:
                # Starvation guard: when exclusions leave nowhere to go,
                # forgive them rather than strand the task forever.
                # Quarantine is enforced *inside* plan_placement and is
                # never forgiven: an open breaker gets zero placements.
                placement = self.rms.plan_placement(
                    entry.task, data_sites=data_sites, now=self.engine.now
                )
        except SchedulingError as exc:
            entry.failure_reason = str(exc)
            return False
        finally:
            if prof is not None:
                prof.leave()
        if placement is None:
            return False
        if not math.isfinite(placement.total_time_s):
            # Partitioned network: no finite route for the inputs.
            # Defer; the link-restore handler re-runs the queue.
            entry.failure_reason = "no finite-cost route (network partition)"
            return False
        if self.health is not None and self.health.is_probation(
            placement.candidate.node_id, self.engine.now
        ):
            # Probationary trickle through a half-open breaker: the
            # probe event precedes the dispatch, telling the checker
            # this placement is sanctioned.
            entry.is_probe = True
            self.health.note_probe(placement.candidate.node_id)
            self._emit("probe", entry.key, node=placement.candidate.node_id)
        self.rms.commit(placement)
        entry.dispatched = True
        entry.placement = placement
        self.active[entry.key] = entry
        self.metrics.record_dispatch(
            entry.key,
            self.engine.now,
            pe_kind=placement.candidate.kind.value,
            node_id=placement.candidate.node_id,
            transfer_time=placement.transfer_time_s,
            synthesis_time=placement.synthesis_time_s,
            reconfig_time=placement.reconfig_time_s,
            reused=placement.reused_configuration,
            resource_index=placement.candidate.resource_index,
            slices=(
                placement.bitstream.required_slices
                if placement.bitstream is not None
                else task_required_slices(entry.task)
            ),
        )
        if self.telemetry is not None:
            self.telemetry.histogram(
                "task_wait_seconds", "arrival -> dispatch latency"
            ).observe(self.engine.now - self.metrics.tasks[entry.key].arrival)
        if self.tracer is not None:
            self._emit(
                "dispatch",
                entry.key,
                node=placement.candidate.node_id,
                resource=placement.candidate.resource_id,
                region=placement.region_id,
                pe_kind=placement.candidate.kind.value,
                function=entry.task.function,
                reused=placement.reused_configuration,
                transfer_time=placement.transfer_time_s,
                synthesis_time=placement.synthesis_time_s,
                reconfig_time=placement.reconfig_time_s,
            )
            if placement.region_id is not None:
                slices, capacity = self._region_slices(placement)
                self._emit(
                    "slice-alloc",
                    entry.key,
                    node=placement.candidate.node_id,
                    resource=placement.candidate.resource_id,
                    region=placement.region_id,
                    slices=slices,
                    capacity=capacity,
                )
            if placement.reconfig_time_s > 0:
                self._emit(
                    "reconfigure",
                    entry.key,
                    node=placement.candidate.node_id,
                    resource=placement.candidate.resource_id,
                    region=placement.region_id,
                    function=entry.task.function,
                    duration=placement.reconfig_time_s,
                )
        if entry.resumed_from is not None:
            # This dispatch resumes checkpointed work lost to a fault
            # or timeout: the task migrated (possibly back, under the
            # starvation guard) carrying its preserved progress.
            self.metrics.record_migration(entry.key, self.engine.now)
            self._telemetry_count(
                "sim_migrations_total", "checkpoint-resume migrations"
            )
            self._emit(
                "migrate",
                entry.key,
                node=placement.candidate.node_id,
                from_node=entry.resumed_from,
            )
            entry.resumed_from = None
        if self.failover is not None and self.failover.lease_s is not None:
            entry.lease_expiry = self.engine.now + self.failover.lease_s
        if placement.candidate.node_id in self._dead_nodes:
            # Dispatched into the detection window: the node is already
            # dead, the RMS just doesn't know yet.  Nothing will ever
            # come back from it; the task stalls (no setup/start events)
            # until the detector confirms the loss or the node reboots.
            return True
        if (
            self.resilience is not None
            and self.resilience.speculation is not None
            and placement.total_time_s > 0
        ):
            straggler_at = (
                self.resilience.speculation.slowdown_factor * placement.total_time_s
            )
            entry.events.append(
                self.engine.schedule(
                    straggler_at, lambda: self._maybe_speculate(entry)
                )
            )
        # A configuration-port load (fresh bitstream or soft-core
        # provisioning) may fail: the fault surfaces when the load
        # would have completed, scrapping the setup work.
        if (
            self.faults is not None
            and placement.reconfig_time_s > 0
            and placement.candidate.kind is not PEClass.GPP
            and placement.candidate.kind is not PEClass.GPU
            and self.faults.config_should_fail()
        ):
            entry.events.append(
                self.engine.schedule(
                    placement.setup_time_s,
                    lambda: self._configuration_failed(entry),
                )
            )
            return True
        entry.events.append(
            self.engine.schedule(placement.setup_time_s, lambda: self._start(entry))
        )
        return True

    def _configuration_failed(self, entry: _Entry) -> None:
        placement = entry.placement
        assert placement is not None
        self._fault(
            entry,
            reason=(
                f"configuration of {entry.task.function or 'soft core'} failed on "
                f"node {placement.candidate.node_id} "
                f"(region {placement.region_id})"
            ),
            clear_configuration=True,
        )

    def _execution_fault(self, entry: _Entry) -> None:
        placement = entry.placement
        assert placement is not None
        self._fault(
            entry,
            reason=(
                f"SEU corrupted {entry.task.function or 'task'} on node "
                f"{placement.candidate.node_id} (region {placement.region_id})"
            ),
            clear_configuration=True,
        )

    def _start(self, entry: _Entry) -> None:
        placement = entry.placement
        assert placement is not None
        self.rms.begin_execution(placement)
        self.metrics.record_start(entry.key, self.engine.now)
        if self.tracer is not None:
            self._emit("start", entry.key, node=placement.candidate.node_id)
        if entry.job_id is not None:
            self.jss.mark_started(
                entry.job_id,
                entry.task.task_id,
                time=self.engine.now,
                node_id=placement.candidate.node_id,
            )
        # Progress snapshots for fabric tasks; overhead stretches the
        # execution.  Scheduled before the SEU branch so snapshots
        # taken ahead of the strike survive it (the fault cancels any
        # that were still pending).
        overhead_s = self._schedule_checkpoints(entry, placement)
        # Transient SEU hazard while a fabric-hosted task executes: one
        # draw per start decides whether (and when) the circuit is
        # corrupted before it can finish.
        if self.faults is not None and placement.region_id is not None:
            seu_at = self.faults.seu_delay_s(placement.exec_time_s)
            if seu_at is not None:
                entry.events.append(
                    self.engine.schedule(seu_at, lambda: self._execution_fault(entry))
                )
                return
        entry.events.append(
            self.engine.schedule(
                placement.exec_time_s + overhead_s, lambda: self._finish(entry)
            )
        )

    def _finish(self, entry: _Entry) -> None:
        placement = entry.placement
        assert placement is not None
        replica = self._replicas.get(entry.key)
        if replica is not None:
            # The primary finished first: the speculative copy lost.
            self._abort_replica(replica, action="lose")
        self.rms.finish_execution(placement)
        label = (
            f"node{placement.candidate.node_id}:"
            f"{placement.candidate.kind.value}{placement.candidate.resource_index}"
        )
        self.metrics.record_finish(entry.key, self.engine.now, label)
        if self.telemetry is not None:
            self.telemetry.histogram(
                "task_turnaround_seconds", "arrival -> completion latency"
            ).observe(self.engine.now - self.metrics.tasks[entry.key].arrival)
        if self.slo is not None:
            row = self.metrics.tasks[entry.key]
            self.slo.observe_completion(
                tenant=entry.task.tenant,
                priority=entry.task.priority,
                wait=(
                    row.dispatch - row.arrival
                    if row.dispatch is not None
                    else None
                ),
                turnaround=self.engine.now - row.arrival,
            )
        self._health_success(entry, placement.candidate.node_id)
        if self.admission is not None:
            self.admission.note_completion()
        entry.completed = True
        for handle in entry.deadline_events:
            handle.cancel()
        entry.deadline_events.clear()
        if self.tracer is not None:
            self._emit("complete", entry.key, node=placement.candidate.node_id)
            self._emit_slice_free(entry)
        self.active.pop(entry.key, None)
        self._output_sites[(entry.job_id, entry.task.task_id)] = (
            placement.candidate.node_id
        )
        if entry.job_id is not None and not entry.silent:
            self.jss.mark_completed(entry.job_id, entry.task.task_id, time=self.engine.now)
        if entry.on_complete is not None:
            entry.on_complete(entry)
        self._dispatch_pending()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def _run_profiled(self, until: float | None, max_events: int | None) -> None:
        """Drive the engine one event at a time under ``engine`` scopes.

        Fires exactly the events ``engine.run`` would, in the same
        order (``step`` pops the identical next event), so profiling
        never changes simulated behavior.  ``step`` runs the handler
        too, so the ``engine`` scope holds pop/push plus handler glue;
        handlers that enter their own scopes (matchmaking, dispatch,
        faults, telemetry) reclaim that time from it -- scopes nest,
        and the profiler charges exclusive self-time.
        """
        prof = self.hostprof
        engine = self.engine
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            prof.enter("engine")
            next_time = engine.peek_time()
            if next_time is None:
                prof.leave()
                break
            if until is not None and next_time > until:
                prof.leave()
                break
            engine.step()
            prof.leave()
            fired += 1
        if until is not None and engine.now < until:
            engine.now = until

    def run(self, until: float | None = None, max_events: int | None = None) -> SimulationReport:
        prof = self.hostprof
        if prof is None:
            self.engine.run(until=until, max_events=max_events)
        else:
            prof.start()
            self._run_profiled(until, max_events)
        if self.health is not None:
            self.metrics.record_quarantine_stats(
                episodes=self.health.total_quarantine_episodes(),
                total_s=self.health.total_quarantine_s(self.engine.now),
            )
        if self.admission is not None:
            ctl = self.admission
            ctl.finalize(self.engine.now)
            self.metrics.record_admission_stats(
                gated=ctl.placements_gated,
                transitions=ctl.brownout_transitions,
                max_stage=ctl.max_stage_seen,
                brownout_time_s=ctl.brownout_time_s,
                brownout_completions=ctl.brownout_completions,
            )
        if self.control_plane is not None:
            cp = self.control_plane
            self.metrics.record_failover_stats(
                rms_crashes=cp.crashes,
                rms_gray=cp.gray_events,
                failovers=cp.failovers,
                downtime_s=cp.unavailability_s(self.engine.now),
                detection_latencies=self._detection_latencies,
                false_suspicions=self._false_suspicions,
                leases_expired=self._leases_expired,
            )
        if self.slo is not None:
            self.slo.finalize(self.engine.now)
            self.metrics.record_slo_stats(self.slo.results(self.engine.now))
            if self.telemetry is not None:
                self.slo.publish(self.telemetry, self.engine.now)
        if prof is None:
            return self.metrics.report(self.engine.now)
        prof.enter("metrics")
        try:
            report = self.metrics.report(self.engine.now)
        finally:
            prof.leave()
            prof.stop()
        report.host_phase_s = prof.phase_seconds()
        report.host_phase_calls = prof.call_counts()
        return report
