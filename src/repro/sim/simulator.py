"""DReAMSim facade: the timed grid simulator.

Wires the event engine, an RMS (with its scheduler strategy and
virtualization layer), an optional JSS, and the metrics collector into
the simulator of refs [20][21]:

* independent task streams with arbitrary arrival processes;
* task-graph execution (Figure 7): a task becomes ready when all its
  producers complete;
* Eq. 3 application execution (Figure 8): clause steps run in order,
  ``Par`` steps concurrently, ``Stream`` clauses as chunked pipelines
  (the Section VI future-work scenario);
* configuration reuse and partial reconfiguration through the fabric
  model;
* dynamic node join/leave with re-queueing of in-flight tasks (the
  Section IV-A adaptivity claim under faults);
* optional task discard after a maximum pending age.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Callable

from repro.core.application import Application, ClauseKind
from repro.core.matching import task_required_slices
from repro.core.node import Node
from repro.core.task import DataIn, DataOut, Task
from repro.grid.jss import JobSubmissionSystem
from repro.grid.rms import Placement, ResourceManagementSystem, SchedulingError
from repro.sim.engine import EventHandle, SimulationEngine
from repro.sim.metrics import MetricsCollector, SimulationReport
from repro.sim.tracing import Tracer


@dataclass
class _Entry:
    """One schedulable unit inside the simulator."""

    key: object
    task: Task
    job_id: int | None = None
    on_complete: Callable[["_Entry"], None] | None = None
    dispatched: bool = False
    discarded: bool = False
    placement: Placement | None = None
    events: list[EventHandle] = field(default_factory=list)
    #: Suppress JSS completion marking (stream chunks mark once).
    silent: bool = False


class DReAMSim:
    """The simulator.  One instance = one experiment run."""

    def __init__(
        self,
        rms: ResourceManagementSystem,
        *,
        jss: JobSubmissionSystem | None = None,
        discard_after_s: float | None = None,
        tracer: Tracer | None = None,
    ):
        if discard_after_s is not None and discard_after_s <= 0:
            raise ValueError("discard_after_s must be positive")
        self.engine = SimulationEngine()
        self.rms = rms
        self.jss = jss or JobSubmissionSystem(virtualization=rms.virtualization)
        self.metrics = MetricsCollector()
        self.tracer = tracer
        self.discard_after_s = discard_after_s
        self.pending: list[_Entry] = []
        self.active: dict[object, _Entry] = {}
        self.requeues = 0
        #: (job_id, task_id) -> node where the task's outputs landed;
        #: feeds the RMS's locality-aware input-staging prices.
        self._output_sites: dict[tuple[object, int], int] = {}

    # ------------------------------------------------------------------
    # Structured tracing (no-ops without a tracer)
    # ------------------------------------------------------------------
    def _emit(self, kind: str, key: object = None, **payload) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.engine.now, kind, key=key, **payload)

    def _region_slices(self, placement: Placement) -> tuple[int, int]:
        """(region slices, device capacity) of a committed placement."""
        rpe = self.rms.node(placement.candidate.node_id).rpe(
            placement.candidate.resource_id
        )
        for region in rpe.fabric.regions:
            if region.region_id == placement.region_id:
                return region.slices, rpe.fabric.total_slices
        raise SchedulingError(  # pragma: no cover - defensive
            f"placement region {placement.region_id} vanished"
        )

    def _emit_slice_free(self, entry: _Entry) -> None:
        placement = entry.placement
        if self.tracer is None or placement is None or placement.region_id is None:
            return
        slices, capacity = self._region_slices(placement)
        self._emit(
            "slice-free",
            entry.key,
            node=placement.candidate.node_id,
            resource=placement.candidate.resource_id,
            region=placement.region_id,
            slices=slices,
            capacity=capacity,
        )

    # ------------------------------------------------------------------
    # Submission APIs
    # ------------------------------------------------------------------
    def submit_workload(self, stream: list[tuple[float, Task]]) -> None:
        """Schedule an independent-task arrival stream (synthetic
        workloads); each task is tracked as its own JSS job."""
        for time, task in stream:
            job = self.jss.submit_task(task, submit_time=time)

            def make(t: Task = task, j: int = job.job_id) -> Callable[[], None]:
                return lambda: self._arrive(t, job_id=j, key=(j, t.task_id))

            self.engine.schedule_at(time, make())

    def submit_graph(self, tasks: list[Task], *, at: float = 0.0) -> int:
        """Submit a Figure 7 style data-dependent task set; returns the
        job id.  A task arrives the moment its producers all complete."""
        job = self.jss.submit_graph(tasks, submit_time=at)
        graph = job.graph
        assert graph is not None
        completed: set[int] = set()
        arrived: set[int] = set()

        def arrive_ready() -> None:
            for task_id in sorted(graph.ready_tasks(completed) - arrived):
                arrived.add(task_id)
                task = graph.task(task_id)
                self._arrive(
                    task,
                    job_id=job.job_id,
                    key=(job.job_id, task_id),
                    on_complete=on_complete,
                )

        def on_complete(entry: _Entry) -> None:
            completed.add(entry.task.task_id)
            arrive_ready()

        self.engine.schedule_at(at, arrive_ready)
        return job.job_id

    def submit_application(
        self,
        application: Application,
        tasks: dict[int, Task],
        *,
        at: float = 0.0,
        stream_chunks: int = 4,
    ) -> int:
        """Submit an Eq. 3 application; clause steps execute in order
        (Figure 8).  ``Stream`` clauses pipeline each task over
        *stream_chunks* data chunks."""
        if stream_chunks <= 0:
            raise ValueError("stream_chunks must be positive")
        job = self.jss.submit_application(application, tasks, submit_time=at)

        stages: list[tuple[ClauseKind, list[int]]] = []
        for clause in application.clauses:
            if clause.kind is ClauseKind.STREAM:
                stages.append((ClauseKind.STREAM, list(clause.task_ids)))
            else:
                for step in clause.steps():
                    stages.append((clause.kind, step))

        state = {"stage": 0}

        def launch_stage() -> None:
            if state["stage"] >= len(stages):
                return
            kind, task_ids = stages[state["stage"]]
            if kind is ClauseKind.STREAM:
                self._launch_stream(job.job_id, [tasks[t] for t in task_ids],
                                    stream_chunks, next_stage)
                return
            remaining = {"n": len(task_ids)}

            def on_complete(entry: _Entry) -> None:
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    next_stage()

            for task_id in task_ids:
                self._arrive(
                    tasks[task_id],
                    job_id=job.job_id,
                    key=(job.job_id, task_id),
                    on_complete=on_complete,
                )

        def next_stage() -> None:
            state["stage"] += 1
            launch_stage()

        self.engine.schedule_at(at, launch_stage)
        return job.job_id

    def _launch_stream(
        self,
        job_id: int,
        stream_tasks: list[Task],
        chunks: int,
        when_done: Callable[[], None],
    ) -> None:
        """Pipelined execution: chunk *c* of stage *j* becomes ready when
        chunk *c* of stage *j-1* and chunk *c-1* of stage *j* are done."""
        done: set[tuple[int, int]] = set()  # (stage_index, chunk)
        arrived: set[tuple[int, int]] = set()
        total = len(stream_tasks) * chunks

        def chunk_task(stage: int, chunk: int) -> Task:
            base = stream_tasks[stage]
            scale = 1.0 / chunks
            return replace(
                base,
                data_in=tuple(
                    DataIn(d.source_task_id, d.data_id, max(1, d.size_bytes // chunks))
                    for d in base.data_in
                ),
                data_out=tuple(
                    DataOut(d.data_id, max(1, d.size_bytes // chunks))
                    for d in base.data_out
                ),
                t_estimated=base.t_estimated * scale,
                workload_mi=base.effective_workload_mi * scale,
            )

        def ready(stage: int, chunk: int) -> bool:
            if stage > 0 and (stage - 1, chunk) not in done:
                return False
            if chunk > 0 and (stage, chunk - 1) not in done:
                return False
            return True

        def arrive_ready() -> None:
            for stage in range(len(stream_tasks)):
                for chunk in range(chunks):
                    pos = (stage, chunk)
                    if pos in arrived or pos in done or not ready(*pos):
                        continue
                    arrived.add(pos)
                    base = stream_tasks[stage]
                    is_last = chunk == chunks - 1
                    self._arrive(
                        chunk_task(stage, chunk),
                        job_id=job_id,
                        key=(job_id, base.task_id, chunk),
                        on_complete=make_hook(pos, base.task_id, is_last),
                        silent=not is_last,
                    )

        def make_hook(pos: tuple[int, int], task_id: int, is_last: bool):
            def hook(entry: _Entry) -> None:
                done.add(pos)
                if len(done) == total:
                    when_done()
                else:
                    arrive_ready()

            return hook

        arrive_ready()

    # ------------------------------------------------------------------
    # Dynamic grid membership (Section IV-A adaptivity)
    # ------------------------------------------------------------------
    def schedule_node_join(self, time: float, node: Node, *, site: int | None = None) -> None:
        def join() -> None:
            self.rms.register_node(node, site=site)
            self.metrics.trace.append((self.engine.now, "node-join", node.node_id))
            self._emit(
                "node-join",
                node=node.node_id,
                gpps=len(node.gpps),
                rpes=len(node.rpes),
            )
            self._dispatch_pending()

        self.engine.schedule_at(time, join)

    def schedule_node_leave(self, time: float, node_id: int) -> None:
        def leave() -> None:
            victims = [
                e
                for e in self.active.values()
                if e.placement is not None and e.placement.candidate.node_id == node_id
            ]
            for entry in victims:
                for handle in entry.events:
                    handle.cancel()
                entry.events.clear()
                self._emit_slice_free(entry)
                self._emit("requeue", entry.key, node=node_id)
                entry.dispatched = False
                entry.placement = None
                del self.active[entry.key]
                self.pending.append(entry)
                self.requeues += 1
                self.metrics.trace.append((self.engine.now, "requeue", entry.key))
            self.rms.unregister_node(node_id)
            self.metrics.trace.append((self.engine.now, "node-leave", node_id))
            self._emit("node-leave", node=node_id)
            self._dispatch_pending()

        self.engine.schedule_at(time, leave)

    # ------------------------------------------------------------------
    # Core event handlers
    # ------------------------------------------------------------------
    def _arrive(
        self,
        task: Task,
        *,
        job_id: int | None = None,
        key: object | None = None,
        on_complete: Callable[[_Entry], None] | None = None,
        silent: bool = False,
    ) -> None:
        entry = _Entry(
            key=key if key is not None else task.task_id,
            task=task,
            job_id=job_id,
            on_complete=on_complete,
            silent=silent,
        )
        self.metrics.record_arrival(entry.key, self.engine.now, task.function)
        self._emit(
            "submit",
            entry.key,
            function=task.function,
            pe_class=task.exec_req.node_type.value,
        )
        self.pending.append(entry)
        if self.discard_after_s is not None:
            deadline = self.discard_after_s

            def maybe_discard() -> None:
                if not entry.dispatched and not entry.discarded:
                    entry.discarded = True
                    self.pending.remove(entry)
                    self.metrics.record_discard(entry.key, self.engine.now)
                    self._emit("discard", entry.key)
                    if entry.job_id is not None and not entry.silent:
                        self.jss.mark_failed(
                            entry.job_id, entry.task.task_id, time=self.engine.now
                        )

            self.engine.schedule(deadline, maybe_discard)
        self._dispatch_pending()

    def _dispatch_pending(self) -> None:
        """One FIFO pass over the queue; each successful dispatch
        immediately reserves resources, so later entries see the
        updated state."""
        for entry in list(self.pending):
            if entry.discarded or entry.dispatched:
                continue
            if self._try_dispatch(entry):
                self.pending.remove(entry)

    def _try_dispatch(self, entry: _Entry) -> bool:
        data_sites = {
            data.source_task_id: self._output_sites[(entry.job_id, data.source_task_id)]
            for data in entry.task.data_in
            if (entry.job_id, data.source_task_id) in self._output_sites
        }
        try:
            placement = self.rms.plan_placement(
                entry.task, data_sites=data_sites or None
            )
        except SchedulingError:
            return False
        if placement is None:
            return False
        self.rms.commit(placement)
        entry.dispatched = True
        entry.placement = placement
        self.active[entry.key] = entry
        self.metrics.record_dispatch(
            entry.key,
            self.engine.now,
            pe_kind=placement.candidate.kind.value,
            node_id=placement.candidate.node_id,
            transfer_time=placement.transfer_time_s,
            synthesis_time=placement.synthesis_time_s,
            reconfig_time=placement.reconfig_time_s,
            reused=placement.reused_configuration,
            resource_index=placement.candidate.resource_index,
            slices=(
                placement.bitstream.required_slices
                if placement.bitstream is not None
                else task_required_slices(entry.task)
            ),
        )
        if self.tracer is not None:
            self._emit(
                "dispatch",
                entry.key,
                node=placement.candidate.node_id,
                resource=placement.candidate.resource_id,
                region=placement.region_id,
                pe_kind=placement.candidate.kind.value,
                function=entry.task.function,
                reused=placement.reused_configuration,
                transfer_time=placement.transfer_time_s,
                synthesis_time=placement.synthesis_time_s,
                reconfig_time=placement.reconfig_time_s,
            )
            if placement.region_id is not None:
                slices, capacity = self._region_slices(placement)
                self._emit(
                    "slice-alloc",
                    entry.key,
                    node=placement.candidate.node_id,
                    resource=placement.candidate.resource_id,
                    region=placement.region_id,
                    slices=slices,
                    capacity=capacity,
                )
            if placement.reconfig_time_s > 0:
                self._emit(
                    "reconfigure",
                    entry.key,
                    node=placement.candidate.node_id,
                    resource=placement.candidate.resource_id,
                    region=placement.region_id,
                    function=entry.task.function,
                    duration=placement.reconfig_time_s,
                )
        entry.events.append(
            self.engine.schedule(placement.setup_time_s, lambda: self._start(entry))
        )
        return True

    def _start(self, entry: _Entry) -> None:
        placement = entry.placement
        assert placement is not None
        self.rms.begin_execution(placement)
        self.metrics.record_start(entry.key, self.engine.now)
        self._emit("start", entry.key, node=placement.candidate.node_id)
        if entry.job_id is not None:
            self.jss.mark_started(
                entry.job_id,
                entry.task.task_id,
                time=self.engine.now,
                node_id=placement.candidate.node_id,
            )
        entry.events.append(
            self.engine.schedule(placement.exec_time_s, lambda: self._finish(entry))
        )

    def _finish(self, entry: _Entry) -> None:
        placement = entry.placement
        assert placement is not None
        self.rms.finish_execution(placement)
        label = (
            f"node{placement.candidate.node_id}:"
            f"{placement.candidate.kind.value}{placement.candidate.resource_index}"
        )
        self.metrics.record_finish(entry.key, self.engine.now, label)
        self._emit("complete", entry.key, node=placement.candidate.node_id)
        self._emit_slice_free(entry)
        self.active.pop(entry.key, None)
        self._output_sites[(entry.job_id, entry.task.task_id)] = (
            placement.candidate.node_id
        )
        if entry.job_id is not None and not entry.silent:
            self.jss.mark_completed(entry.job_id, entry.task.task_id, time=self.engine.now)
        if entry.on_complete is not None:
            entry.on_complete(entry)
        self._dispatch_pending()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> SimulationReport:
        self.engine.run(until=until, max_events=max_events)
        return self.metrics.report(self.engine.now)
