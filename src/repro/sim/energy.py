"""Energy accounting over finished simulation runs.

Turns the paper's "more performance at lower power" (Section I) into a
measurable quantity: given a finished :class:`DReAMSim` run and its
grid, :class:`EnergyAuditor` integrates each resource's power model
over the run horizon -- active power during task execution,
reconfiguration power during bitstream loads, and idle/leakage power
the rest of the time -- and reports total joules, joules per completed
task, and the per-resource breakdown.

The auditor reads the simulator's per-task metrics (execution windows,
PE kind, reconfiguration times) rather than instrumenting the event
loop, so it can audit any run after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grid.rms import ResourceManagementSystem
from repro.hardware.power import (
    energy_per_task_j,
    fpga_active_power,
    fpga_reconfig_power,
    fpga_static_power,
    gpp_power,
)
from repro.sim.simulator import DReAMSim


@dataclass(frozen=True)
class EnergyReport:
    """Joules, decomposed the way an operator would ask for them."""

    horizon_s: float
    active_j: float
    reconfig_j: float
    idle_j: float
    completed_tasks: int

    def __post_init__(self) -> None:
        if min(self.active_j, self.reconfig_j, self.idle_j) < 0:
            raise ValueError("energy terms must be non-negative")

    @property
    def total_j(self) -> float:
        return self.active_j + self.reconfig_j + self.idle_j

    @property
    def joules_per_task(self) -> float:
        if self.completed_tasks == 0:
            return 0.0
        return self.total_j / self.completed_tasks

    def summary_lines(self) -> list[str]:
        return [
            f"energy total         {self.total_j:12.1f} J over {self.horizon_s:.1f} s",
            f"  active / reconfig / idle   {self.active_j:.1f} / {self.reconfig_j:.1f} / {self.idle_j:.1f} J",
            f"  per completed task {self.joules_per_task:12.2f} J",
        ]


class EnergyAuditor:
    """Post-hoc energy integration for a finished run."""

    def __init__(self, rms: ResourceManagementSystem):
        self.rms = rms

    # ------------------------------------------------------------------
    # Per-task active energy
    # ------------------------------------------------------------------
    def _task_active_energy(self, sim: DReAMSim, key: object) -> tuple[float, float]:
        """(active_j, reconfig_j) of one finished task."""
        tm = sim.metrics.tasks[key]
        if tm.finish is None or tm.start is None:
            return 0.0, 0.0
        exec_s = tm.finish - tm.start
        node = self.rms._nodes.get(tm.node_id)  # node may have left
        if node is None:
            return 0.0, 0.0

        if tm.pe_kind == "GPP":
            if not node.gpps:
                return 0.0, 0.0
            index = tm.resource_index if tm.resource_index is not None else 0
            spec = node.gpps[min(index, len(node.gpps) - 1)].spec
            power = gpp_power(spec, load=1.0)
            return energy_per_task_j(power, exec_s), 0.0

        if tm.pe_kind == "GPU":
            if not node.gpus:
                return 0.0, 0.0
            from repro.hardware.power import gpu_power

            index = tm.resource_index if tm.resource_index is not None else 0
            spec = node.gpus[min(index, len(node.gpus) - 1)].spec
            return energy_per_task_j(gpu_power(spec, load=1.0), exec_s), 0.0

        # RPE or soft core hosted on one.
        if not node.rpes:
            return 0.0, 0.0
        index = tm.resource_index if tm.resource_index is not None else 0
        device = node.rpes[min(index, len(node.rpes) - 1)].device
        active_slices = tm.slices if tm.slices > 0 else max(1, device.slices // 4)
        reconfig_j = energy_per_task_j(fpga_reconfig_power(device), tm.reconfig_time)
        active_j = energy_per_task_j(fpga_active_power(device, active_slices), exec_s)
        return active_j, reconfig_j

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def audit(self, sim: DReAMSim) -> EnergyReport:
        """Integrate power over the finished run in *sim*."""
        horizon = sim.engine.now
        active_j = 0.0
        reconfig_j = 0.0

        completed = 0
        # Per-resource busy seconds: (node_id, kind-group, index).
        # SOFTCORE execution occupies an RPE, so it folds into "RPE".
        busy: dict[tuple[int, str, int], float] = {}
        for key, tm in sim.metrics.tasks.items():
            if tm.finish is None:
                continue
            completed += 1
            a, r = self._task_active_energy(sim, key)
            active_j += a
            reconfig_j += r
            if tm.node_id is not None and tm.start is not None:
                group = "GPP" if tm.pe_kind == "GPP" else "RPE"
                index = tm.resource_index if tm.resource_index is not None else 0
                slot = (tm.node_id, group, index)
                busy[slot] = busy.get(slot, 0.0) + (tm.finish - tm.start)

        # Idle/leakage for the remaining time of every registered
        # resource (active windows already include the static share
        # inside the per-task power models above).
        idle_j = 0.0
        for node in self.rms.nodes:
            for index, gpp in enumerate(node.gpps):
                busy_s = min(busy.get((node.node_id, "GPP", index), 0.0), horizon)
                idle_power = gpp_power(gpp.spec, load=0.0).total_w
                idle_j += idle_power * (horizon - busy_s)
            for index, rpe in enumerate(node.rpes):
                busy_s = min(busy.get((node.node_id, "RPE", index), 0.0), horizon)
                leak = fpga_static_power(rpe.device).total_w
                idle_j += leak * (horizon - busy_s)

        return EnergyReport(
            horizon_s=horizon,
            active_j=active_j,
            reconfig_j=reconfig_j,
            idle_j=idle_j,
            completed_tasks=completed,
        )
