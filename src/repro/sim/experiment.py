"""Declarative DReAMSim experiments.

The paper: "The DReAMSim can be used to investigate the desired system
scenario(s) for a particular scheduling strategy and a given number of
tasks, grid nodes, configurations, task arrival distributions, area
ranges, and task required times etc." (Section V).

:class:`ExperimentSpec` is exactly that parameter list as one
declarative object; :func:`run_experiment` builds the grid, workload
and simulator from it and returns the metrics (plus, optionally, the
energy audit).  Everything is seeded, so a spec is a complete,
reproducible description of an experiment -- specs can be compared,
swept (:func:`sweep`), and serialized into papers' method sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.node import Node
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.scheduling import ALL_STRATEGIES, RandomScheduler
from repro.sim.admission import AdmissionSpec
from repro.sim.energy import EnergyAuditor, EnergyReport
from repro.sim.failover import FailoverSpec
from repro.sim.faults import FaultInjector, FaultSpec, RetryPolicy
from repro.sim.metrics import SimulationReport
from repro.sim.resilience import ResilienceSpec
from repro.sim.simulator import DReAMSim
from repro.sim.slo import SLOSpec
from repro.sim.telemetry import TelemetryRegistry
from repro.sim.tracing import Tracer
from repro.sim.workload import (
    ArrivalProcess,
    ConfigurationPool,
    FlashCrowdArrivals,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)


@dataclass(frozen=True)
class NodeSpec:
    """One grid node: GPP count/speed and RPE devices/regions."""

    gpps: int = 1
    gpp_mips: float = 1_500.0
    rpe_models: tuple[str, ...] = ("XC5VLX220",)
    regions_per_rpe: int = 2

    def __post_init__(self) -> None:
        if self.gpps < 0:
            raise ValueError("GPP count must be non-negative")
        if self.gpps == 0 and not self.rpe_models:
            raise ValueError("a node needs at least one processing element")
        if self.regions_per_rpe <= 0:
            raise ValueError("regions per RPE must be positive")


@dataclass(frozen=True)
class ExperimentSpec:
    """The Section V parameter list, as data.

    =====================  =============================================
    Paper's knob           Field
    =====================  =============================================
    scheduling strategy    ``strategy`` (a key of ``ALL_STRATEGIES``)
    number of tasks        ``tasks``
    grid nodes             ``nodes`` (list of :class:`NodeSpec`)
    configurations         ``configurations`` (pool size)
    arrival distribution   ``arrival_rate_per_s`` (Poisson) or a custom
                           process via :func:`run_experiment`'s override
    area ranges            ``area_range``
    task required times    ``required_time_range_s``
    =====================  =============================================
    """

    strategy: str = "hybrid-cost"
    tasks: int = 200
    nodes: tuple[NodeSpec, ...] = (NodeSpec(), NodeSpec())
    configurations: int = 8
    arrival_rate_per_s: float = 2.0
    area_range: tuple[int, int] = (2_000, 12_000)
    speedup_range: tuple[float, float] = (5.0, 25.0)
    required_time_range_s: tuple[float, float] = (0.5, 3.0)
    gpp_fraction: float = 0.5
    bandwidth_mbps: float = 100.0
    latency_s: float = 0.005
    discard_after_s: float | None = None
    seed: int = 0
    #: Fault scenario injected alongside the workload (None = fault-free).
    #: The fault streams split off the experiment seed (see
    #: :func:`repro.sim.workload.independent_rng`), so adding faults
    #: never changes the arrival sequence.
    faults: FaultSpec | None = None
    #: Recovery policy; None uses :class:`RetryPolicy`'s defaults.
    retry: RetryPolicy | None = None
    #: Adaptive resilience layer (circuit breakers, deadlines,
    #: checkpointing, speculation); None = the exact PR 2 behavior.
    #: None of its mechanisms draws randomness, so enabling it never
    #: perturbs the seeded workload or fault streams.
    resilience: ResilienceSpec | None = None
    #: Discrete-event scheduler: ``"heap"`` (the default binary heap)
    #: or ``"calendar"`` (the O(1) calendar queue for scale runs).
    #: Both produce identical event orders -- locked by differential
    #: property tests and the golden byte-identity suite -- so this is
    #: purely a performance knob.
    engine: str = "heap"
    #: Overload protection (:mod:`repro.sim.admission`); None = the
    #: exact unprotected simulator.  No admission policy draws
    #: randomness, so arming one never perturbs the seeded streams.
    admission: AdmissionSpec | None = None
    #: Fraction of tasks tagged ``priority=-1`` (first candidates for
    #: brownout degradation and shedding).  0 keeps the workload's RNG
    #: consumption byte-identical to pre-overload runs.
    low_priority_fraction: float = 0.0
    #: Tenant tags cycled over tasks (``tenant{i % tenants}``); 1 keeps
    #: every task untagged.
    tenants: int = 1
    #: ``(surge_start_s, surge_duration_s, surge_multiplier)``: replace
    #: the Poisson arrivals with a :class:`~repro.sim.workload.
    #: FlashCrowdArrivals` whose base rate is ``arrival_rate_per_s``
    #: and which multiplies it by the given factor inside the window --
    #: the overload study's forcing function.
    flash_crowd: tuple[float, float, float] | None = None
    #: Control-plane fault tolerance (:mod:`repro.sim.failover`):
    #: heartbeat failure detection, replicated-RMS failover, and
    #: lease-based orphan recovery.  ``None`` (or an inert spec with no
    #: heartbeat and no standbys) keeps the simulator byte-identical to
    #: pre-failover runs -- locked by the golden-trace suite.  The only
    #: randomness it can introduce is the ``heartbeat_loss_prob`` draw,
    #: which lives on its own fault stream.
    failover: FailoverSpec | None = None
    #: Online SLO monitoring (:mod:`repro.sim.slo`): declarative
    #: latency/throughput/availability/queue objectives with burn-rate
    #: alerting, evaluated while the run executes.  Purely
    #: observational -- ``None`` (or an empty spec) and an armed
    #: monitor both leave simulated behavior byte-identical; arming one
    #: only *adds* ``slo-*`` trace events and report/telemetry rollups.
    slo: SLOSpec | None = None

    def __post_init__(self) -> None:
        if self.strategy not in ALL_STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; choose from "
                + ", ".join(sorted(ALL_STRATEGIES))
            )
        if self.tasks < 0:
            raise ValueError("task count must be non-negative")
        if not self.nodes:
            raise ValueError("an experiment needs at least one node")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.flash_crowd is not None:
            if len(self.flash_crowd) != 3:
                raise ValueError(
                    "flash_crowd must be (surge_start_s, surge_duration_s, "
                    "surge_multiplier)"
                )
            start, duration, multiplier = self.flash_crowd
            if start < 0:
                raise ValueError("surge start must be non-negative")
            if duration <= 0:
                raise ValueError("surge duration must be positive")
            if multiplier < 1.0:
                raise ValueError("surge multiplier must be >= 1")
        from repro.sim.engine import ENGINES

        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from "
                + ", ".join(sorted(ENGINES))
            )

    def with_(self, **overrides) -> "ExperimentSpec":
        """A modified copy -- the sweep primitive."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one run produced."""

    spec: ExperimentSpec
    report: SimulationReport
    energy: EnergyReport | None


def build_grid(spec: ExperimentSpec) -> ResourceManagementSystem:
    """Materialize the spec's grid (nodes, network, scheduler)."""
    cls = ALL_STRATEGIES[spec.strategy]
    scheduler = cls(seed=spec.seed) if cls is RandomScheduler else cls()
    network = Network.fully_connected(
        list(range(len(spec.nodes))),
        bandwidth_mbps=spec.bandwidth_mbps,
        latency_s=spec.latency_s,
    )
    rms = ResourceManagementSystem(network=network, scheduler=scheduler)
    for node_id, node_spec in enumerate(spec.nodes):
        node = Node(node_id=node_id, name=f"Node_{node_id}")
        for g in range(node_spec.gpps):
            node.add_gpp(GPPSpec(cpu_model=f"gpp{node_id}.{g}", mips=node_spec.gpp_mips))
        for model in node_spec.rpe_models:
            node.add_rpe(device_by_model(model), regions=node_spec.regions_per_rpe)
        rms.register_node(node)
    return rms


def _spec_arrivals(spec: ExperimentSpec) -> ArrivalProcess:
    """The spec's arrival process: flash-crowd surge when configured,
    otherwise the plain Poisson stream."""
    if spec.flash_crowd is not None:
        start, duration, multiplier = spec.flash_crowd
        return FlashCrowdArrivals(
            spec.arrival_rate_per_s,
            surge_start_s=start,
            surge_duration_s=duration,
            surge_multiplier=multiplier,
        )
    return PoissonArrivals(rate_per_s=spec.arrival_rate_per_s)


def _spec_workload(spec: ExperimentSpec) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=spec.tasks,
        gpp_fraction=spec.gpp_fraction,
        required_time_range_s=spec.required_time_range_s,
        low_priority_fraction=spec.low_priority_fraction,
        tenants=spec.tenants,
    )


def run_experiment(
    spec: ExperimentSpec,
    *,
    arrivals: ArrivalProcess | None = None,
    audit_energy: bool = False,
    tracer: Tracer | None = None,
    telemetry: TelemetryRegistry | None = None,
    metrics=None,
    hostprof=None,
) -> ExperimentResult:
    """Build, run, and report one experiment.

    ``arrivals`` overrides the Poisson process (e.g. with
    :class:`~repro.sim.workload.TraceArrivals` for trace-driven runs).
    ``tracer`` receives the structured event stream (and, when it
    carries a :class:`~repro.sim.tracing.TraceInvariantChecker`,
    validates the run online).  ``telemetry`` receives sim-time series
    (:class:`~repro.sim.telemetry.TelemetryRegistry`); after the run
    its ``meta`` carries the spec's headline knobs for the dashboard.
    ``metrics`` swaps in a custom collector (e.g.
    :class:`~repro.sim.metrics.BulkMetricsCollector`).  ``hostprof``
    attaches a :class:`~repro.sim.hostprof.HostPhaseProfiler`, whose
    phase table lands on the report (``host_phase_s``).
    """
    rms = build_grid(spec)
    pool = ConfigurationPool(
        spec.configurations,
        area_range=spec.area_range,
        speedup_range=spec.speedup_range,
        seed=spec.seed,
    )
    pool.populate_repository(
        rms.virtualization.repository,
        [rpe.device for node in rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        _spec_workload(spec),
        pool,
        arrivals or _spec_arrivals(spec),
        seed=spec.seed,
    )
    injector = (
        FaultInjector(spec.faults, seed=spec.seed) if spec.faults is not None else None
    )
    sim = DReAMSim(
        rms,
        discard_after_s=spec.discard_after_s,
        tracer=tracer,
        faults=injector,
        retry=spec.retry,
        resilience=spec.resilience,
        admission=spec.admission,
        failover=spec.failover,
        slo=spec.slo,
        telemetry=telemetry,
        engine=spec.engine,
        metrics=metrics,
        hostprof=hostprof,
    )
    sim.submit_workload(workload.generate())
    report = sim.run()
    if telemetry is not None:
        from repro.provenance import run_provenance

        telemetry.meta.update(
            provenance=run_provenance(spec),
            strategy=spec.strategy,
            tasks=spec.tasks,
            seed=spec.seed,
            arrival_rate_per_s=spec.arrival_rate_per_s,
            nodes=len(rms.nodes),
            faults=spec.faults is not None,
            resilience=(
                spec.resilience.describe() if spec.resilience is not None else {}
            ),
            admission=(
                spec.admission.describe() if spec.admission is not None else {}
            ),
            failover=(
                spec.failover.describe() if spec.failover is not None else {}
            ),
            slo=(spec.slo.describe() if spec.slo is not None else {}),
            horizon_s=report.horizon_s,
            summary=report.summary_lines(),
        )
    energy = EnergyAuditor(rms).audit(sim) if audit_energy else None
    return ExperimentResult(spec=spec, report=report, energy=energy)


def run_scale_experiment(
    spec: ExperimentSpec, *, hostprof=None
) -> ExperimentResult:
    """Run one experiment through the million-task hot path.

    Same grid and seed handling as :func:`run_experiment`, but every
    per-task allocation is stripped out of the steady state:

    * the workload is drawn as numpy columns
      (:meth:`~repro.sim.workload.SyntheticWorkload.generate_columns`)
      and each :class:`~repro.core.task.Task` is materialized lazily at
      its arrival instant;
    * arrivals are bulk-scheduled (``engine.schedule_batch``) with one
      shared callback -- no per-task closure, handle, or JSS job;
    * metrics accumulate into numpy columns
      (:class:`~repro.sim.metrics.BulkMetricsCollector`).

    The column draw order differs from ``generate()``'s per-task order,
    so a scale run is a *different* (equally valid) seeded workload
    than ``run_experiment`` with the same spec; scale runs are only
    compared against scale runs.  Tracers, telemetry, and the energy
    auditor need per-task records and are deliberately unsupported
    here -- use :func:`run_experiment` for those.
    """
    from repro.sim.metrics import BulkMetricsCollector

    rms = build_grid(spec)
    pool = ConfigurationPool(
        spec.configurations,
        area_range=spec.area_range,
        speedup_range=spec.speedup_range,
        seed=spec.seed,
    )
    pool.populate_repository(
        rms.virtualization.repository,
        [rpe.device for node in rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        _spec_workload(spec),
        pool,
        _spec_arrivals(spec),
        seed=spec.seed,
    )
    injector = (
        FaultInjector(spec.faults, seed=spec.seed) if spec.faults is not None else None
    )
    sim = DReAMSim(
        rms,
        discard_after_s=spec.discard_after_s,
        faults=injector,
        retry=spec.retry,
        resilience=spec.resilience,
        admission=spec.admission,
        failover=spec.failover,
        slo=spec.slo,
        engine=spec.engine,
        metrics=BulkMetricsCollector(capacity=spec.tasks),
        hostprof=hostprof,
    )
    sim.submit_workload_columns(workload.generate_columns())
    report = sim.run()
    return ExperimentResult(spec=spec, report=report, energy=None)


def sweep(base: ExperimentSpec, field_name: str, values) -> list[ExperimentResult]:
    """Run *base* once per value of one knob (the ablation primitive)."""
    return [run_experiment(base.with_(**{field_name: value})) for value in values]


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean and standard deviation of the headline metrics over seeds.

    A single seeded run is a point estimate; papers report intervals.
    """

    seeds: tuple[int, ...]
    mean_wait_s: float
    std_wait_s: float
    mean_turnaround_s: float
    std_turnaround_s: float
    mean_makespan_s: float
    std_makespan_s: float
    mean_reuse_rate: float

    def summary_lines(self) -> list[str]:
        return [
            f"replications        {len(self.seeds)} seeds",
            f"mean wait           {self.mean_wait_s:8.4f} +/- {self.std_wait_s:.4f} s",
            f"mean turnaround     {self.mean_turnaround_s:8.4f} +/- {self.std_turnaround_s:.4f} s",
            f"mean makespan       {self.mean_makespan_s:8.2f} +/- {self.std_makespan_s:.2f} s",
            f"mean reuse rate     {self.mean_reuse_rate:8.2%}",
        ]


def summarize_replications(
    seeds: list[int], reports: list[SimulationReport]
) -> ReplicationSummary:
    """Aggregate per-seed reports into a :class:`ReplicationSummary`.

    Shared by the serial :func:`replicate` and the parallel runner
    (:mod:`repro.sim.runner`), so both paths summarize identically.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if len(seeds) != len(reports):
        raise ValueError("one report per seed required")
    import numpy as np

    waits = np.array([r.mean_wait_s for r in reports])
    turnarounds = np.array([r.mean_turnaround_s for r in reports])
    makespans = np.array([r.makespan_s for r in reports])
    reuse = np.array([r.reuse_rate for r in reports])
    return ReplicationSummary(
        seeds=tuple(seeds),
        mean_wait_s=float(waits.mean()),
        std_wait_s=float(waits.std()),
        mean_turnaround_s=float(turnarounds.mean()),
        std_turnaround_s=float(turnarounds.std()),
        mean_makespan_s=float(makespans.mean()),
        std_makespan_s=float(makespans.std()),
        mean_reuse_rate=float(reuse.mean()),
    )


def replicate(base: ExperimentSpec, seeds: list[int]) -> ReplicationSummary:
    """Run *base* under each seed and aggregate (mean +/- std)."""
    reports = [run_experiment(base.with_(seed=s)).report for s in seeds]
    return summarize_replications(seeds, reports)
