"""Cross-run performance observability: the unified bench harness.

The ``benchmarks/bench_*.py`` scripts regenerate the paper's artifacts
and pin claims with asserts, but each one timed itself ad hoc.  This
package puts every benchmark kernel behind one harness so performance
is *comparable across runs and commits*:

* :class:`~repro.bench.core.BenchCase` + a global registry
  (:func:`~repro.bench.core.register`) -- one named, grouped, timed
  kernel per benchmark, returning its headline simulator metrics
  (makespan, utilization, goodput...) alongside wall-clock stats
  (median / p10 / p90 over N repetitions after warmup).
* :mod:`repro.bench.cases` -- the registered cases; the
  ``benchmarks/bench_*.py`` scripts import their kernels from here, so
  the pytest benches, the standalone scripts and ``repro bench`` all
  time exactly the same code.
* :mod:`repro.bench.diff` -- the run-diff engine behind ``repro
  diff``: compares two ``BENCH_*.json`` suites (or two report /
  telemetry dumps) with per-metric relative tolerances, renders a
  human table plus a machine verdict, and exits 1 on regression.

``repro bench --quick --json`` writes a schema-versioned
``BENCH_<timestamp>.json`` at the repository root -- the longitudinal
trajectory -- and CI diffs the quick suite against the committed
``benchmarks/baseline.json`` on every push.
"""

from repro.bench.core import (
    BENCH_FORMAT,
    BenchCase,
    BenchResult,
    all_cases,
    get_case,
    load_bench_json,
    match_cases,
    register,
    run_case,
    run_suite,
    standalone_main,
    suite_to_json,
    summary_table,
    write_bench_json,
)
from repro.bench.diff import (
    DEFAULT_METRIC_TOLERANCE,
    DEFAULT_WALL_TOLERANCE,
    DiffReport,
    DiffRow,
    diff_artifacts,
    load_artifact,
)

# Importing the case catalog populates the registry as a side effect.
import repro.bench.cases  # noqa: E402,F401  (registration side effect)

__all__ = [
    "BENCH_FORMAT",
    "BenchCase",
    "BenchResult",
    "DEFAULT_METRIC_TOLERANCE",
    "DEFAULT_WALL_TOLERANCE",
    "DiffReport",
    "DiffRow",
    "all_cases",
    "diff_artifacts",
    "get_case",
    "load_artifact",
    "load_bench_json",
    "match_cases",
    "register",
    "run_case",
    "run_suite",
    "standalone_main",
    "suite_to_json",
    "summary_table",
    "write_bench_json",
]
