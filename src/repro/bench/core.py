"""BenchCase protocol, registry, runner, and the BENCH JSON schema.

One :class:`BenchCase` is a named, grouped benchmark kernel: a callable
that does a fixed amount of representative work and returns its
headline metrics as a flat ``{name: number}`` dict.  The harness owns
everything the old scripts copy-pasted -- warmup, repetitions,
percentile wall-time statistics, metric capture, environment
fingerprinting, and JSON serialization -- so a kernel is just the work.

Determinism contract: kernels are seeded, so their *metrics* are
identical across repetitions and across machines; the harness asserts
this (a kernel whose metrics drift between repetitions is a bug, not
noise).  Only wall-clock varies, which is exactly what the percentile
stats summarize.
"""

from __future__ import annotations

import json
import re
import statistics
import sys
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: Layout version of the ``BENCH_*.json`` suite files; ``repro diff``
#: refuses files whose version it does not understand.
BENCH_FORMAT = 1

#: Kind tag distinguishing bench suites from report/telemetry dumps.
BENCH_KIND = "bench-suite"


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark kernel.

    ``fn(quick)`` performs the work and returns the metrics dict; the
    ``quick`` flag selects a smaller (but still representative)
    workload for the CI regression gate.  ``quick_eligible`` excludes
    kernels too heavy or too machine-dependent for the quick suite.
    """

    name: str
    group: str
    fn: Callable[[bool], dict[str, float]]
    description: str = ""
    quick_eligible: bool = True

    def run_once(
        self, *, quick: bool = False
    ) -> tuple[float, dict[str, float], dict[str, float]]:
        """(wall seconds, metrics, host phases) for one invocation.

        A kernel may smuggle a host-phase profile (wall seconds per
        simulator phase, see :mod:`repro.sim.hostprof`) out under the
        reserved ``"_host_phases"`` metrics key; the harness pops it
        here so host timings -- which vary run to run like wall-clock
        does -- never reach the metric-determinism assertion.
        """
        start = time.perf_counter()
        metrics = self.fn(quick)
        elapsed = time.perf_counter() - start
        if not isinstance(metrics, dict):
            raise TypeError(
                f"bench case {self.name!r} must return a metrics dict, "
                f"got {type(metrics).__name__}"
            )
        host_phases = metrics.pop("_host_phases", None) or {}
        return (
            elapsed,
            {k: float(v) for k, v in metrics.items()},
            {k: float(v) for k, v in host_phases.items()},
        )


#: The global case registry (name -> case), populated by
#: :mod:`repro.bench.cases` at import time.
_REGISTRY: dict[str, BenchCase] = {}


def register(
    name: str,
    group: str,
    *,
    description: str = "",
    quick_eligible: bool = True,
) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn(quick) -> metrics`` as a bench case."""

    def wrap(fn: Callable[[bool], dict[str, float]]) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"bench case {name!r} registered twice")
        _REGISTRY[name] = BenchCase(
            name=name, group=group, fn=fn,
            description=description or (fn.__doc__ or "").strip().split("\n")[0],
            quick_eligible=quick_eligible,
        )
        return fn

    return wrap


def all_cases() -> list[BenchCase]:
    """Every registered case, in sorted name order."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_case(name: str) -> BenchCase:
    """The registered case named *name*; ``KeyError`` with the full
    catalog otherwise."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown bench case {name!r}; choose from "
            + ", ".join(sorted(_REGISTRY))
        ) from None


def match_cases(pattern: str | None, *, quick: bool = False) -> list[BenchCase]:
    """Cases whose name or group matches *pattern* (regex, unanchored).

    ``quick=True`` additionally restricts to quick-eligible cases.
    """
    cases = all_cases()
    if quick:
        cases = [c for c in cases if c.quick_eligible]
    if pattern:
        rx = re.compile(pattern)
        cases = [c for c in cases if rx.search(c.name) or rx.search(c.group)]
    return cases


@dataclass
class BenchResult:
    """Wall-time statistics and metrics of one case under the harness."""

    name: str
    group: str
    repeat: int
    warmup: int
    quick: bool
    wall_times_s: list[float]
    metrics: dict[str, float] = field(default_factory=dict)
    #: Median host wall seconds per simulator phase, when the kernel
    #: ran under the host-phase profiler (empty otherwise).
    host_phases: dict[str, float] = field(default_factory=dict)

    @property
    def median_s(self) -> float:
        return statistics.median(self.wall_times_s)

    @property
    def p10_s(self) -> float:
        return _percentile(self.wall_times_s, 10.0)

    @property
    def p90_s(self) -> float:
        return _percentile(self.wall_times_s, 90.0)

    @property
    def best_s(self) -> float:
        return min(self.wall_times_s)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "group": self.group,
            "repeat": self.repeat,
            "warmup": self.warmup,
            "quick": self.quick,
            "wall_s": {
                "median": self.median_s,
                "p10": self.p10_s,
                "p90": self.p90_s,
                "best": self.best_s,
                "all": list(self.wall_times_s),
            },
            "metrics": dict(sorted(self.metrics.items())),
            # Host timings vary like wall-clock, so they live beside
            # "wall_s", not inside the exact-match "metrics" dict;
            # repro diff ignores keys it does not know.
            "host_phases": dict(sorted(self.host_phases.items())),
        }


def _percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile without a numpy dependency here."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def run_case(
    case: BenchCase,
    *,
    repeat: int = 5,
    warmup: int = 1,
    quick: bool = False,
) -> BenchResult:
    """Warm up, repeat, and collect one case's stats.

    The metrics of every repetition must agree (kernels are seeded);
    a mismatch raises, surfacing nondeterminism instead of averaging
    it away.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        case.run_once(quick=quick)
    walls: list[float] = []
    metrics: dict[str, float] | None = None
    phase_samples: dict[str, list[float]] = {}
    for _ in range(repeat):
        elapsed, observed, host_phases = case.run_once(quick=quick)
        walls.append(elapsed)
        for phase, seconds in host_phases.items():
            phase_samples.setdefault(phase, []).append(seconds)
        if metrics is None:
            metrics = observed
        elif observed != metrics:
            raise AssertionError(
                f"bench case {case.name!r} is nondeterministic: metrics "
                f"changed between repetitions ({metrics} vs {observed})"
            )
    return BenchResult(
        name=case.name, group=case.group, repeat=repeat, warmup=warmup,
        quick=quick, wall_times_s=walls, metrics=metrics or {},
        host_phases={
            phase: statistics.median(samples)
            for phase, samples in phase_samples.items()
        },
    )


def run_suite(
    cases: Iterable[BenchCase],
    *,
    repeat: int = 5,
    warmup: int = 1,
    quick: bool = False,
    progress: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run *cases* in order; ``progress`` receives one line per case."""
    results = []
    cases = list(cases)
    for index, case in enumerate(cases, 1):
        result = run_case(case, repeat=repeat, warmup=warmup, quick=quick)
        if progress is not None:
            progress(
                f"[{index}/{len(cases)}] {case.name}: "
                f"median {result.median_s * 1e3:.2f} ms "
                f"(p10 {result.p10_s * 1e3:.2f} / p90 {result.p90_s * 1e3:.2f}), "
                f"{len(result.metrics)} metrics"
            )
        results.append(result)
    return results


def suite_to_json(
    results: Sequence[BenchResult],
    *,
    quick: bool = False,
    created_utc: str | None = None,
) -> dict:
    """The schema-versioned ``BENCH_*.json`` document."""
    from repro.provenance import run_provenance

    return {
        "format": BENCH_FORMAT,
        "kind": BENCH_KIND,
        "mode": "quick" if quick else "full",
        "created_utc": created_utc,
        "env": run_provenance(),
        "cases": [r.to_json() for r in results],
    }


def write_bench_json(path: str | Path, document: dict) -> None:
    """Persist a :func:`suite_to_json` document (sorted, ascii)."""
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="ascii"
    )


def load_bench_json(path: str | Path) -> dict:
    """Read and validate a ``BENCH_*.json`` suite file."""
    data = json.loads(Path(path).read_text(encoding="ascii"))
    if not isinstance(data, dict) or data.get("kind") != BENCH_KIND:
        raise ValueError(f"{path}: not a bench suite file")
    if data.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{path}: unsupported bench format {data.get('format')!r} "
            f"(expected {BENCH_FORMAT})"
        )
    return data


def default_bench_filename(now: time.struct_time | None = None) -> str:
    """``BENCH_<UTC timestamp>.json`` -- the trajectory naming scheme."""
    stamp = time.strftime("%Y%m%dT%H%M%SZ", now or time.gmtime())
    return f"BENCH_{stamp}.json"


def summary_table(results: Sequence[BenchResult]) -> str:
    """The human table ``repro bench`` prints."""
    from repro.report import ascii_table

    rows = []
    for r in results:
        headline = ", ".join(
            f"{k}={v:g}" for k, v in sorted(r.metrics.items())[:3]
        )
        if len(r.metrics) > 3:
            headline += f" (+{len(r.metrics) - 3} more)"
        rows.append(
            (
                r.name,
                r.group,
                f"{r.median_s * 1e3:.2f}",
                f"{r.p10_s * 1e3:.2f}",
                f"{r.p90_s * 1e3:.2f}",
                headline,
            )
        )
    return ascii_table(
        ["case", "group", "median ms", "p10 ms", "p90 ms", "metrics"],
        rows,
        title=f"bench suite ({len(results)} case(s))",
    )


def standalone_main(case_name: str, argv: list[str] | None = None) -> int:
    """Shared ``__main__`` for the ``benchmarks/bench_*.py`` scripts.

    Replaces the per-script ad-hoc timing/printing blocks: every ported
    script runs its registered case through the harness with the same
    flags the ``repro bench`` subcommand takes (``--repeat``,
    ``--warmup``, ``--quick``, ``--json``).
    """
    import argparse

    import repro.bench.cases  # noqa: F401  (ensure registration)

    parser = argparse.ArgumentParser(
        description=f"run the {case_name!r} bench case through the harness"
    )
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced CI workload")
    parser.add_argument("--json", metavar="PATH",
                        help="also write a single-case BENCH json")
    args = parser.parse_args(argv)
    case = get_case(case_name)
    result = run_case(
        case, repeat=args.repeat, warmup=args.warmup, quick=args.quick
    )
    print(summary_table([result]))
    for key, value in sorted(result.metrics.items()):
        print(f"  {key:32s} {value:g}")
    if args.json:
        write_bench_json(
            args.json, suite_to_json([result], quick=args.quick)
        )
        print(f"wrote {args.json}", file=sys.stderr)
    return 0
