"""The run-diff engine behind ``repro diff``.

Compares two persisted observability artifacts -- bench suites
(``BENCH_*.json``), report dumps (``repro simulate --report-json``),
or telemetry dumps (``repro simulate --telemetry``) -- metric by
metric, with relative tolerances, and renders both a human table and a
machine JSON verdict.  A telemetry series contributes three keys: its
final value, its sample count, and a CRC-32 of the full point
trajectory -- so runs that diverge mid-run are caught even when they
converge to the same final values.

Two tolerance regimes, because the repo's determinism contract splits
the numbers in two:

* **metrics** (makespan, utilization, goodput...) are seeded and
  byte-stable across repetitions *and machines*; any drift beyond a
  tight tolerance is a behavior change, and the comparison is
  two-sided.
* **wall times** are machine noise around a trend; only a *slowdown*
  beyond a loose tolerance fails (one-sided) -- getting faster is
  never a regression.

Provenance stamps gate the whole comparison: artifacts from different
specs/seeds/cache-formats are refused with a clear message (exit 2)
rather than diffed into a misleading table; ``--force`` overrides.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.provenance import comparability_error

#: Two-sided relative tolerance for simulator metrics.  Seeded runs
#: reproduce metrics exactly, so this only needs to absorb float
#: round-off, not sampling noise.
DEFAULT_METRIC_TOLERANCE = 1e-9

#: One-sided relative tolerance for wall-time medians: the current run
#: may be up to this much slower than baseline before it counts as a
#: regression.  CI passes a far more generous value because runner
#: hardware varies.
DEFAULT_WALL_TOLERANCE = 0.25

#: Differences below this absolute size are equal, whatever the
#: relative tolerance says -- guards metrics that sit at/near zero.
_ABS_EPSILON = 1e-12


# ----------------------------------------------------------------------
# Artifact loading (flavor sniffing)
# ----------------------------------------------------------------------

@dataclass
class Artifact:
    """One loaded artifact, normalized for comparison.

    ``wall`` holds one-sided wall-clock entries (seconds), ``metrics``
    two-sided behavior metrics; keys are namespaced (``case/metric``)
    so bench suites, report dumps and telemetry dumps all reduce to
    the same flat comparison.
    """

    path: str
    flavor: str  # "bench" | "report" | "telemetry" | "slo"
    provenance: dict | None
    wall: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    mode: str | None = None  # bench suites: "quick" | "full"


def load_artifact(path: str | Path) -> Artifact:
    """Load and flavor-sniff *path*; raises ``ValueError`` on files
    that are none of the three supported artifact kinds."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: cannot read artifact ({exc})") from exc
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a JSON object")
    if data.get("kind") == "bench-suite":
        return _load_bench(path, data)
    if data.get("kind") == "slo-eval":
        return _load_slo(path, data)
    if data.get("kind") == "report-dump" or "report" in data:
        return _load_report(path, data)
    if "series" in data and "format" in data:
        return _load_telemetry(path, data)
    raise ValueError(
        f"{path}: unrecognized artifact (expected a BENCH_*.json suite, "
        f"a --report-json dump, a --telemetry dump, or a `repro slo "
        f"--json` evaluation)"
    )


def _load_bench(path: Path, data: dict) -> Artifact:
    from repro.bench.core import BENCH_FORMAT

    if data.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{path}: unsupported bench format {data.get('format')!r} "
            f"(expected {BENCH_FORMAT})"
        )
    artifact = Artifact(
        path=str(path), flavor="bench", provenance=data.get("env"),
        mode=data.get("mode"),
    )
    for case in data.get("cases", []):
        name = case["name"]
        wall = case.get("wall_s", {})
        if "median" in wall:
            artifact.wall[f"{name}/wall_median_s"] = float(wall["median"])
        for key, value in (case.get("metrics") or {}).items():
            artifact.metrics[f"{name}/{key}"] = float(value)
    return artifact


def _load_slo(path: Path, data: dict) -> Artifact:
    """`repro slo --json` evaluations: the pre-flattened per-objective
    attainment / error-budget / breach-seconds metrics, so two SLO
    evaluations of the same spec+seed diff like any other run pair."""
    artifact = Artifact(
        path=str(path), flavor="slo", provenance=data.get("provenance"),
    )
    for key, value in (data.get("metrics") or {}).items():
        if isinstance(value, (int, float)) and math.isfinite(value):
            artifact.metrics[key] = float(value)
    return artifact


def _load_report(path: Path, data: dict) -> Artifact:
    report = data.get("report")
    if not isinstance(report, dict):
        raise ValueError(f"{path}: report dump has no 'report' object")
    artifact = Artifact(
        path=str(path), flavor="report", provenance=data.get("provenance"),
    )
    for key, value in report.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and math.isfinite(value):
            artifact.metrics[key] = float(value)
    return artifact


def _load_telemetry(path: Path, data: dict) -> Artifact:
    from repro.sim.telemetry import TELEMETRY_FORMAT

    if data.get("format") != TELEMETRY_FORMAT:
        raise ValueError(
            f"{path}: unsupported telemetry format {data.get('format')!r} "
            f"(expected {TELEMETRY_FORMAT})"
        )
    meta = data.get("meta") or {}
    artifact = Artifact(
        path=str(path), flavor="telemetry",
        provenance=meta.get("provenance") if isinstance(meta, dict) else None,
    )
    for record in data.get("series") or []:
        points = record.get("points") or []
        if not points:
            continue
        labels = record.get("labels") or {}
        key = record["name"]
        if labels:
            inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            key = f"{key}{{{inner}}}"
        # Final value alone would call two runs that diverge mid-run
        # but converge identical, so each series also contributes its
        # sample count and a checksum over the full point trajectory.
        artifact.metrics[key] = float(points[-1][1])
        artifact.metrics[f"{key}/samples"] = float(len(points))
        artifact.metrics[f"{key}/points_crc32"] = float(
            zlib.crc32(json.dumps(points).encode("utf-8"))
        )
    return artifact


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

@dataclass
class DiffRow:
    """One compared key.

    ``status`` is one of ``ok`` / ``regression`` / ``drift`` /
    ``improved`` / ``added`` / ``removed``; only ``regression`` and
    ``drift`` fail the diff.
    """

    key: str
    kind: str  # "wall" | "metric"
    baseline: float | None
    current: float | None
    rel_change: float | None
    tolerance: float
    status: str

    @property
    def failing(self) -> bool:
        return self.status in ("regression", "drift")

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "baseline": self.baseline,
            "current": self.current,
            "rel_change": self.rel_change,
            "tolerance": self.tolerance,
            "status": self.status,
        }


@dataclass
class DiffReport:
    """The full verdict of one artifact comparison."""

    baseline_path: str
    current_path: str
    flavor: str
    metric_tolerance: float
    wall_tolerance: float
    rows: list[DiffRow] = field(default_factory=list)
    refusal: str | None = None
    forced: bool = False

    @property
    def failures(self) -> list[DiffRow]:
        return [row for row in self.rows if row.failing]

    @property
    def verdict(self) -> str:
        if self.refusal is not None:
            return "incomparable"
        return "regression" if self.failures else "ok"

    @property
    def exit_code(self) -> int:
        return {"ok": 0, "regression": 1, "incomparable": 2}[self.verdict]

    def to_json(self) -> dict:
        return {
            "verdict": self.verdict,
            "exit_code": self.exit_code,
            "flavor": self.flavor,
            "baseline": self.baseline_path,
            "current": self.current_path,
            "metric_tolerance": self.metric_tolerance,
            "wall_tolerance": self.wall_tolerance,
            "forced": self.forced,
            "refusal": self.refusal,
            "compared": len(self.rows),
            "failures": len(self.failures),
            "rows": [row.to_json() for row in self.rows],
        }

    def render(self, *, verbose: bool = False) -> str:
        """The human table: failures and changes always; unchanged rows
        only under ``verbose``."""
        from repro.report import ascii_table

        lines = []
        if self.refusal is not None:
            lines.append(f"REFUSED: {self.refusal}")
            return "\n".join(lines)
        shown = [
            row for row in self.rows if verbose or row.status != "ok"
        ]
        if shown:
            table_rows = []
            for row in sorted(
                shown, key=lambda r: (not r.failing, r.key)
            ):
                table_rows.append((
                    row.key,
                    row.kind,
                    "-" if row.baseline is None else f"{row.baseline:g}",
                    "-" if row.current is None else f"{row.current:g}",
                    ("-" if row.rel_change is None
                     else f"{row.rel_change * 100:+.2f}%"),
                    row.status.upper() if row.failing else row.status,
                ))
            lines.append(ascii_table(
                ["key", "kind", "baseline", "current", "change", "status"],
                table_rows,
                title=f"diff ({self.flavor}): "
                      f"{self.baseline_path} -> {self.current_path}",
            ))
        lines.append(
            f"verdict: {self.verdict} -- {len(self.rows)} key(s) compared, "
            f"{len(self.failures)} failing"
            + (" (forced)" if self.forced else "")
        )
        return "\n".join(lines)


def _relative_change(baseline: float, current: float) -> float:
    if abs(current - baseline) <= _ABS_EPSILON:
        return 0.0
    if baseline == 0.0:
        return math.inf if current > 0 else -math.inf
    return (current - baseline) / abs(baseline)


def _compare(
    kind: str,
    baseline: dict[str, float],
    current: dict[str, float],
    tolerance: float,
) -> list[DiffRow]:
    rows = []
    for key in sorted(set(baseline) | set(current)):
        if key not in current:
            rows.append(DiffRow(key, kind, baseline[key], None, None,
                                tolerance, "removed"))
            continue
        if key not in baseline:
            rows.append(DiffRow(key, kind, None, current[key], None,
                                tolerance, "added"))
            continue
        rel = _relative_change(baseline[key], current[key])
        if kind == "wall":
            # One-sided: only slower-than-tolerance fails.
            if rel > tolerance:
                status = "regression"
            elif rel < -tolerance:
                status = "improved"
            else:
                status = "ok"
        else:
            status = "drift" if abs(rel) > tolerance else "ok"
        rows.append(DiffRow(key, kind, baseline[key], current[key], rel,
                            tolerance, status))
    return rows


def diff_artifacts(
    baseline: str | Path | Artifact,
    current: str | Path | Artifact,
    *,
    metric_tolerance: float = DEFAULT_METRIC_TOLERANCE,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    force: bool = False,
) -> DiffReport:
    """Compare two artifacts (paths or preloaded :class:`Artifact`).

    Raises ``ValueError`` for unreadable/unrecognized files; returns a
    :class:`DiffReport` (possibly with a ``refusal``) otherwise.
    """
    if not isinstance(baseline, Artifact):
        baseline = load_artifact(baseline)
    if not isinstance(current, Artifact):
        current = load_artifact(current)
    report = DiffReport(
        baseline_path=baseline.path, current_path=current.path,
        flavor=baseline.flavor, metric_tolerance=metric_tolerance,
        wall_tolerance=wall_tolerance, forced=force,
    )
    refusal = _refusal(baseline, current)
    if refusal is not None and not force:
        report.refusal = refusal
        return report
    report.rows = (
        _compare("wall", baseline.wall, current.wall, wall_tolerance)
        + _compare("metric", baseline.metrics, current.metrics,
                   metric_tolerance)
    )
    return report


def _refusal(baseline: Artifact, current: Artifact) -> str | None:
    if baseline.flavor != current.flavor:
        return (
            f"artifacts have different flavors ({baseline.flavor} vs "
            f"{current.flavor}); compare like with like or pass --force"
        )
    if (
        baseline.flavor == "bench"
        and baseline.mode and current.mode
        and baseline.mode != current.mode
    ):
        return (
            f"bench suites ran different modes ({baseline.mode} vs "
            f"{current.mode}); quick and full workloads are not "
            f"comparable -- re-run one side or pass --force"
        )
    return comparability_error(
        baseline.provenance, current.provenance, what="runs"
    )
