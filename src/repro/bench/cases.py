"""The registered bench cases -- one per ``benchmarks/bench_*.py`` kernel.

This module is the single home of the benchmark *kernels*: the
``benchmarks/bench_*.py`` scripts import their run functions from here
(keeping their paper-shape assertions and pytest-benchmark timing),
and ``repro bench`` runs the same functions through the harness.  One
implementation, three front ends -- so a wall-time trend in the
``BENCH_*.json`` trajectory always refers to exactly the code the
benches assert about.

Every kernel is seeded and returns a flat metrics dict; the ``quick``
flag shrinks the workload for the CI regression gate without changing
its shape.  Constants (task counts, seeds, grids) are the historical
values from the scripts they were lifted out of -- changing them
invalidates cross-run comparisons, so treat them as frozen.
"""

from __future__ import annotations

from repro.bench.core import register
from repro.sim.metrics import SimulationReport

# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

#: SimulationReport fields every simulator-backed case exports.
REPORT_METRIC_FIELDS = (
    "completed",
    "discarded",
    "pending",
    "mean_wait_s",
    "p95_wait_s",
    "mean_turnaround_s",
    "makespan_s",
    "reconfigurations",
    "total_reconfig_time_s",
    "reuse_rate",
    "mean_utilization",
    "goodput_tasks_per_s",
)

#: Extra fields exported by fault/resilience cases.
RECOVERY_METRIC_FIELDS = (
    "failed",
    "fault_events",
    "retries",
    "gpp_fallbacks",
    "availability",
    "mttr_s",
    "wasted_work_s",
    "deadline_hard_misses",
    "quarantines",
    "checkpoints",
    "migrations",
)


def report_metrics(
    report: SimulationReport, *, recovery: bool = False
) -> dict[str, float]:
    """Flatten a report into the harness's metrics dict."""
    fields = REPORT_METRIC_FIELDS + (RECOVERY_METRIC_FIELDS if recovery else ())
    return {name: float(getattr(report, name)) for name in fields}


# ----------------------------------------------------------------------
# Kernels lifted from benchmarks/bench_grid_scaling.py
# ----------------------------------------------------------------------

GRID_SCALING_TASKS = 240
GRID_SCALING_SEED = 29


def run_grid_scaling(nodes: int, *, tasks: int = GRID_SCALING_TASKS):
    """One fixed workload on a grid of ``nodes`` identical hybrid nodes."""
    from repro.core.node import Node
    from repro.grid.network import Network
    from repro.grid.rms import ResourceManagementSystem
    from repro.hardware.catalog import device_by_model
    from repro.hardware.gpp import GPPSpec
    from repro.scheduling import HybridCostScheduler
    from repro.sim.simulator import DReAMSim
    from repro.sim.workload import (
        ConfigurationPool,
        PoissonArrivals,
        SyntheticWorkload,
        WorkloadSpec,
    )

    rms = ResourceManagementSystem(
        network=Network.fully_connected(
            list(range(nodes)), bandwidth_mbps=100.0, latency_s=0.005
        ),
        scheduler=HybridCostScheduler(),
    )
    for node_id in range(nodes):
        node = Node(node_id=node_id, name=f"Node_{node_id}")
        node.add_gpp(GPPSpec(cpu_model="Xeon", mips=1_500))
        node.add_rpe(device_by_model("XC5VLX220"), regions=2)
        rms.register_node(node)
    pool = ConfigurationPool(6, area_range=(3_000, 12_000), seed=5)
    pool.populate_repository(
        rms.virtualization.repository,
        [rpe.device for node in rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=tasks, gpp_fraction=0.4,
                     required_time_range_s=(1.0, 4.0)),
        pool,
        PoissonArrivals(rate_per_s=4.0),
        seed=GRID_SCALING_SEED,
    )
    sim = DReAMSim(rms)
    sim.submit_workload(workload.generate())
    return sim.run()


@register("grid-scaling", "sim",
          description="240-task workload on a 2-node hybrid grid")
def _case_grid_scaling(quick: bool) -> dict[str, float]:
    report = run_grid_scaling(2, tasks=120 if quick else GRID_SCALING_TASKS)
    return report_metrics(report)


# ----------------------------------------------------------------------
# Kernels lifted from benchmarks/bench_dreamsim_strategies.py
# ----------------------------------------------------------------------

STRATEGY_TASKS = 250
STRATEGY_SEED = 11


def build_strategy_rms(scheduler):
    """The two-node strategy-ablation grid."""
    from repro.core.node import Node
    from repro.grid.network import Network
    from repro.grid.rms import ResourceManagementSystem
    from repro.hardware.catalog import device_by_model
    from repro.hardware.gpp import GPPSpec

    n0 = Node(node_id=0, name="Node_0")
    n0.add_gpp(GPPSpec(cpu_model="XeonA", mips=1_500))
    n0.add_rpe(device_by_model("XC5VLX330"), regions=3)
    n1 = Node(node_id=1, name="Node_1")
    n1.add_gpp(GPPSpec(cpu_model="XeonB", mips=1_500))
    n1.add_rpe(device_by_model("XC5VLX155"), regions=2)
    n1.add_rpe(device_by_model("XC5VLX110"), regions=2)
    net = Network.fully_connected([0, 1], bandwidth_mbps=100.0, latency_s=0.005)
    rms = ResourceManagementSystem(network=net, scheduler=scheduler)
    rms.register_node(n0)
    rms.register_node(n1)
    return rms


def run_strategy(name: str, *, tasks: int = STRATEGY_TASKS):
    """One identical Poisson workload under the named strategy."""
    from repro.scheduling import ALL_STRATEGIES, RandomScheduler
    from repro.sim.simulator import DReAMSim
    from repro.sim.workload import (
        ConfigurationPool,
        PoissonArrivals,
        SyntheticWorkload,
        WorkloadSpec,
    )

    cls = ALL_STRATEGIES[name]
    scheduler = cls(seed=STRATEGY_SEED) if cls is RandomScheduler else cls()
    rms = build_strategy_rms(scheduler)
    pool = ConfigurationPool(8, area_range=(3_000, 16_000), seed=5)
    devices = [rpe.device for node in rms.nodes for rpe in node.rpes]
    pool.populate_repository(rms.virtualization.repository, devices)
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=tasks, gpp_fraction=0.35),
        pool,
        PoissonArrivals(rate_per_s=2.5),
        seed=STRATEGY_SEED,
    )
    sim = DReAMSim(rms)
    sim.submit_workload(workload.generate())
    return sim.run()


@register("dreamsim-strategies", "sim",
          description="hybrid-cost strategy on the ablation grid")
def _case_strategies(quick: bool) -> dict[str, float]:
    report = run_strategy("hybrid-cost", tasks=120 if quick else STRATEGY_TASKS)
    return report_metrics(report)


# ----------------------------------------------------------------------
# Kernels lifted from benchmarks/bench_dreamsim_arrival_sweep.py
# ----------------------------------------------------------------------

ARRIVAL_TASKS = 150
ARRIVAL_SEED = 13


def run_arrival_point(rate: float, with_fabric: bool, *, tasks: int = ARRIVAL_TASKS):
    """One (rate, grid) sample of the load sweep.  Without fabric,
    hardware tasks are resubmitted as plain software tasks so both
    grids face the same logical workload."""
    from repro.core.node import Node
    from repro.grid.rms import ResourceManagementSystem
    from repro.hardware.catalog import device_by_model
    from repro.hardware.gpp import GPPSpec
    from repro.scheduling import HybridCostScheduler
    from repro.sim.simulator import DReAMSim
    from repro.sim.workload import (
        ConfigurationPool,
        PoissonArrivals,
        SyntheticWorkload,
        WorkloadSpec,
    )

    node = Node(node_id=0)
    node.add_gpp(GPPSpec(cpu_model="XeonA", mips=1_000))
    node.add_gpp(GPPSpec(cpu_model="XeonB", mips=1_000))
    if with_fabric:
        node.add_rpe(device_by_model("XC5VLX330"), regions=3)
    rms = ResourceManagementSystem(scheduler=HybridCostScheduler())
    rms.register_node(node)
    pool = ConfigurationPool(
        5, area_range=(4_000, 15_000), speedup_range=(8.0, 15.0), seed=3
    )
    if with_fabric:
        pool.populate_repository(
            rms.virtualization.repository, [device_by_model("XC5VLX330")]
        )
    workload = SyntheticWorkload(
        WorkloadSpec(
            task_count=tasks,
            gpp_fraction=1.0 if not with_fabric else 0.5,
            required_time_range_s=(0.5, 2.0),
        ),
        pool,
        PoissonArrivals(rate_per_s=rate),
        seed=ARRIVAL_SEED,
    )
    sim = DReAMSim(rms)
    sim.submit_workload(workload.generate())
    return sim.run()


@register("arrival-sweep", "sim",
          description="hybrid grid at the 2/s load-sweep point")
def _case_arrival(quick: bool) -> dict[str, float]:
    report = run_arrival_point(2.0, True, tasks=80 if quick else ARRIVAL_TASKS)
    return report_metrics(report)


# ----------------------------------------------------------------------
# Kernels lifted from benchmarks/bench_dreamsim_reconfig.py
# ----------------------------------------------------------------------

RECONFIG_TASKS = 150
RECONFIG_SEED = 23


def run_reconfig(*, partial: bool, pool_size: int, tasks: int = RECONFIG_TASKS):
    """Partial-vs-full reconfiguration under one configuration pool."""
    from repro.core.node import Node
    from repro.grid.rms import ResourceManagementSystem
    from repro.hardware.catalog import device_by_model
    from repro.scheduling import HybridCostScheduler
    from repro.sim.simulator import DReAMSim
    from repro.sim.workload import (
        ConfigurationPool,
        PoissonArrivals,
        SyntheticWorkload,
        WorkloadSpec,
    )

    node = Node(node_id=0)
    node.add_rpe(device_by_model("XC5VLX330"), regions=4)
    rms = ResourceManagementSystem(
        scheduler=HybridCostScheduler(), partial_reconfiguration=partial
    )
    rms.register_node(node)
    pool = ConfigurationPool(pool_size, area_range=(3_000, 12_000), seed=7)
    pool.populate_repository(rms.virtualization.repository, [node.rpes[0].device])
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=tasks, gpp_fraction=0.0),
        pool,
        PoissonArrivals(rate_per_s=1.5),
        seed=RECONFIG_SEED,
    )
    sim = DReAMSim(rms)
    sim.submit_workload(workload.generate())
    return sim.run()


@register("reconfig-sweep", "sim",
          description="partial reconfiguration, 8-configuration pool")
def _case_reconfig(quick: bool) -> dict[str, float]:
    report = run_reconfig(
        partial=True, pool_size=8, tasks=80 if quick else RECONFIG_TASKS
    )
    return report_metrics(report)


# ----------------------------------------------------------------------
# Kernels lifted from benchmarks/bench_hybrid_vs_gpponly.py
# ----------------------------------------------------------------------

HYBRID_TASKS = 200
HYBRID_SEED = 31


def build_hybrid_rms(scheduler):
    """The single-node hybrid grid of the headline comparison."""
    from repro.core.node import Node
    from repro.grid.rms import ResourceManagementSystem
    from repro.hardware.catalog import device_by_model
    from repro.hardware.gpp import GPPSpec

    node = Node(node_id=0)
    node.add_gpp(GPPSpec(cpu_model="XeonA", mips=1_000))
    node.add_gpp(GPPSpec(cpu_model="XeonB", mips=1_000))
    node.add_rpe(device_by_model("XC5VLX330"), regions=3)
    rms = ResourceManagementSystem(scheduler=scheduler)
    rms.register_node(node)
    return rms


def run_mixed(scheduler, gpp_fraction: float, *, tasks: int = HYBRID_TASKS):
    """The mixed workload under one scheduler (the headline kernel)."""
    from repro.hardware.catalog import device_by_model
    from repro.sim.simulator import DReAMSim
    from repro.sim.workload import (
        ConfigurationPool,
        PoissonArrivals,
        SyntheticWorkload,
        WorkloadSpec,
    )

    rms = build_hybrid_rms(scheduler)
    pool = ConfigurationPool(
        6, area_range=(4_000, 15_000), speedup_range=(8.0, 25.0), seed=9
    )
    pool.populate_repository(
        rms.virtualization.repository, [device_by_model("XC5VLX330")]
    )
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=tasks, gpp_fraction=gpp_fraction),
        pool,
        PoissonArrivals(rate_per_s=1.2),
        seed=HYBRID_SEED,
    )
    sim = DReAMSim(rms)
    sim.submit_workload(workload.generate())
    return sim.run()


@register("hybrid-vs-gpponly", "sim",
          description="mixed workload on the hybrid grid (headline claim)")
def _case_hybrid(quick: bool) -> dict[str, float]:
    from repro.scheduling import HybridCostScheduler

    report = run_mixed(
        HybridCostScheduler(), 0.5, tasks=100 if quick else HYBRID_TASKS
    )
    return report_metrics(report)


# ----------------------------------------------------------------------
# Kernels lifted from benchmarks/bench_fabric_allocation.py
# ----------------------------------------------------------------------

FABRIC_REQUESTS = 400
FABRIC_SEED = 17


def fabric_traffic(seed: int = FABRIC_SEED, *, requests: int = FABRIC_REQUESTS):
    """Random (size, hold_steps) allocation requests."""
    import numpy as np

    rng = np.random.default_rng(seed)
    sizes = rng.integers(1_000, 20_000, size=requests)
    holds = rng.integers(1, 12, size=requests)
    return list(zip(sizes.tolist(), holds.tolist()))


def run_fixed_fabric(regions: int, *, requests: int = FABRIC_REQUESTS):
    """Fixed-region fabric under the random traffic; (admitted, rejected)."""
    from repro.hardware.bitstream import Bitstream
    from repro.hardware.catalog import device_by_model
    from repro.hardware.fabric import Fabric, RegionState

    device = device_by_model("XC5VLX330")
    fabric = Fabric.for_device(device, regions=regions)
    admitted = rejected = 0
    live: list[tuple] = []  # (region, remaining_steps)
    for i, (size, hold) in enumerate(fabric_traffic(requests=requests)):
        live = [(r, left - 1) for r, left in live if left - 1 > 0] or []
        held = {r.region_id for r, _ in live}
        for region in fabric.regions:
            if region.state is RegionState.BUSY and region.region_id not in held:
                fabric.vacate(region)
                fabric.clear(region)
        region = fabric.find_placeable(size)
        if region is None:
            rejected += 1
            continue
        if region.state is RegionState.CONFIGURED:
            fabric.clear(region)
        bs = Bitstream(
            10_000 + i, device.model, device.bitstream_size_bytes(size), size,
            implements=f"f{i}",
        )
        fabric.begin_reconfiguration(region, bs)
        fabric.finish_reconfiguration(region)
        fabric.occupy(region)
        live.append((region, hold))
        admitted += 1
    return admitted, rejected


def run_flexible_fabric(
    *, compact_every: int | None, requests: int = FABRIC_REQUESTS
):
    """Slice-granular fabric under the same traffic;
    (admitted, rejected, mean fragmentation, relocations, compaction s)."""
    import numpy as np

    from repro.hardware.catalog import device_by_model
    from repro.hardware.flexfabric import AllocationError, FlexibleFabric

    fabric = FlexibleFabric(device_by_model("XC5VLX330"))
    admitted = rejected = 0
    frag_samples = []
    compaction_s = 0.0
    live: list[tuple] = []  # (span, remaining)
    for i, (size, hold) in enumerate(fabric_traffic(requests=requests)):
        next_live = []
        for span, left in live:
            if left - 1 > 0:
                next_live.append((span, left - 1))
            else:
                fabric.release(span)
        live = next_live
        if compact_every and i % compact_every == 0 and i:
            compaction_s += fabric.compaction_time_s()
            fabric.compact()
        try:
            span = fabric.allocate(size, implements=f"f{i}")
            live.append((span, hold))
            admitted += 1
        except AllocationError:
            rejected += 1
        frag_samples.append(fabric.external_fragmentation())
    return admitted, rejected, float(np.mean(frag_samples)), fabric.relocations, compaction_s


@register("fabric-allocation", "hardware",
          description="slice-granular allocator with periodic compaction")
def _case_fabric(quick: bool) -> dict[str, float]:
    requests = 150 if quick else FABRIC_REQUESTS
    admitted, rejected, frag, relocations, compaction_s = run_flexible_fabric(
        compact_every=50, requests=requests
    )
    return {
        "admitted": admitted,
        "rejected": rejected,
        "mean_fragmentation": frag,
        "relocations": relocations,
        "compaction_s": compaction_s,
    }


# ----------------------------------------------------------------------
# Kernels lifted from benchmarks/bench_fig1_taxonomy.py
# ----------------------------------------------------------------------

def taxonomy_specimens():
    """One instance of every hardware model (the Figure 1 population)."""
    from repro.hardware.catalog import DEVICE_CATALOG
    from repro.hardware.gpp import GPPSpec
    from repro.hardware.gpu import GPUSpec
    from repro.hardware.softcore import (
        RHO_VEX_2ISSUE,
        RHO_VEX_4ISSUE,
        RHO_VEX_8ISSUE,
    )

    return (
        [GPPSpec(cpu_model="Xeon", mips=10_000),
         GPPSpec(cpu_model="Opteron", mips=8_000)]
        + [GPUSpec(model="Tesla", shader_cores=240)]
        + [RHO_VEX_2ISSUE, RHO_VEX_4ISSUE, RHO_VEX_8ISSUE]
        + list(DEVICE_CATALOG.values())
    )


@register("taxonomy-classify", "figures",
          description="classify every modeled PE into the Figure 1 tree")
def _case_taxonomy(quick: bool) -> dict[str, float]:
    from repro.hardware.taxonomy import PEClass, classify

    pool = taxonomy_specimens()
    rounds = 20 if quick else 100
    classes = []
    for _ in range(rounds):
        classes = [classify(s) for s in pool]
    return {
        "specimens": len(pool),
        "rpe_count": classes.count(PEClass.RPE),
        "rounds": rounds,
    }


# ----------------------------------------------------------------------
# Kernel lifted from benchmarks/bench_quipu_estimates.py
# ----------------------------------------------------------------------

def quipu_predict():
    """One full Quipu prediction: metric extraction + linear model."""
    import importlib

    from repro.profiling.metrics import measure_closure
    from repro.profiling.quipu import calibrated_model

    pairalign = importlib.import_module("repro.bioinfo.pairalign").pairalign
    return calibrated_model().predict(measure_closure(pairalign))


@register("quipu-predict", "profiling",
          description="full Quipu slice prediction for pairalign")
def _case_quipu(quick: bool) -> dict[str, float]:
    estimate = quipu_predict()
    return {"pairalign_slices": estimate.slices}


# ----------------------------------------------------------------------
# Table II / case-study kernels
# ----------------------------------------------------------------------

@register("table2-mappings", "figures",
          description="regenerate Table II from the case-study models")
def _case_table2(quick: bool) -> dict[str, float]:
    from repro.casestudy.mappings import matches_paper, table2
    from repro.casestudy.nodes import build_case_study_nodes
    from repro.casestudy.tasks import build_case_study_tasks

    tasks = build_case_study_tasks()
    nodes = build_case_study_nodes()
    rounds = 5 if quick else 25
    rows = []
    for _ in range(rounds):
        rows = table2(tasks, nodes)
    return {
        "rows": len(rows),
        "matches_paper": float(matches_paper(tasks, nodes)),
        "rounds": rounds,
    }


@register("clustalw-align", "bioinfo",
          description="ClustalW alignment of a synthetic family")
def _case_clustalw(quick: bool) -> dict[str, float]:
    from repro.bioinfo.clustalw import clustalw
    from repro.bioinfo.sequences import synthetic_family

    family, length = (6, 60) if quick else (8, 80)
    sequences = synthetic_family(family, length, seed=0)
    result = clustalw(sequences)
    return {
        "sequences": len(sequences),
        "alignment_length": result.length,
        "sp_score": result.sp_score,
    }


# ----------------------------------------------------------------------
# ExperimentSpec-based cases (baseline, faults, resilience, telemetry)
# ----------------------------------------------------------------------

def baseline_spec(*, tasks: int):
    """The canonical two-node reference experiment (CLI defaults)."""
    from repro.sim.experiment import ExperimentSpec, NodeSpec

    return ExperimentSpec(
        tasks=tasks,
        nodes=(
            NodeSpec(gpps=1, gpp_mips=2_000, rpe_models=("XC5VLX330",),
                     regions_per_rpe=3),
            NodeSpec(gpps=1, gpp_mips=1_500, rpe_models=("XC5VLX155",),
                     regions_per_rpe=2),
        ),
        arrival_rate_per_s=2.0,
        gpp_fraction=0.4,
        area_range=(2_000, 12_000),
        seed=0,
    )


@register("sim-baseline", "sim",
          description="canonical 200-task reference experiment")
def _case_sim_baseline(quick: bool) -> dict[str, float]:
    from repro.sim.experiment import run_experiment

    report = run_experiment(baseline_spec(tasks=100 if quick else 200)).report
    return report_metrics(report)


@register("fault-chaos", "sim",
          description="chaos fault preset with bounded-backoff recovery")
def _case_fault_chaos(quick: bool) -> dict[str, float]:
    from repro.sim.experiment import run_experiment
    from repro.sim.faults import FAULT_PRESETS

    spec = baseline_spec(tasks=80 if quick else 160).with_(
        faults=FAULT_PRESETS["chaos"]
    )
    report = run_experiment(spec).report
    return report_metrics(report, recovery=True)


@register("resilience-chaos", "sim",
          description="chaos preset with breakers+deadlines+checkpoints")
def _case_resilience(quick: bool) -> dict[str, float]:
    from repro.grid.health import HealthPolicy
    from repro.sim.experiment import run_experiment
    from repro.sim.faults import FAULT_PRESETS
    from repro.sim.resilience import (
        CheckpointSpec,
        DeadlineSpec,
        ResilienceSpec,
    )

    spec = baseline_spec(tasks=80 if quick else 160).with_(
        faults=FAULT_PRESETS["chaos"],
        resilience=ResilienceSpec(
            breaker=HealthPolicy(),
            deadlines=DeadlineSpec(soft_factor=4.0, hard_factor=12.0),
            checkpoint=CheckpointSpec(interval_s=0.25),
        ),
    )
    report = run_experiment(spec).report
    return report_metrics(report, recovery=True)


@register("telemetry-instrumented", "sim",
          description="fully instrumented run (telemetry registry attached)")
def _case_telemetry(quick: bool) -> dict[str, float]:
    from repro.sim.experiment import run_experiment
    from repro.sim.telemetry import TelemetryRegistry

    telemetry = TelemetryRegistry()
    report = run_experiment(
        baseline_spec(tasks=100 if quick else 200), telemetry=telemetry
    ).report
    metrics = report_metrics(report)
    metrics["instruments"] = len(telemetry.instruments)
    return metrics


@register("traced-invariants", "sim",
          description="traced run with online invariant checking")
def _case_traced(quick: bool) -> dict[str, float]:
    from repro.sim.experiment import run_experiment
    from repro.sim.tracing import Tracer

    tracer = Tracer.with_invariants()
    report = run_experiment(
        baseline_spec(tasks=100 if quick else 200), tracer=tracer
    ).report
    metrics = report_metrics(report)
    metrics["trace_events"] = tracer.events_emitted
    metrics["events_checked"] = tracer.checker.events_checked
    return metrics


@register("energy-audit", "sim",
          description="reference experiment with the energy audit enabled")
def _case_energy(quick: bool) -> dict[str, float]:
    from repro.sim.experiment import run_experiment

    result = run_experiment(
        baseline_spec(tasks=100 if quick else 200), audit_energy=True
    )
    metrics = report_metrics(result.report)
    energy = result.energy
    if energy is not None:
        metrics["total_energy_j"] = energy.total_j
    return metrics


#: Extra fields exported by the overload case.
OVERLOAD_METRIC_FIELDS = (
    "shed",
    "admission_deferrals",
    "placements_gated",
    "brownout_degraded",
    "brownout_transitions",
    "brownout_max_stage",
    "brownout_time_s",
    "overload_goodput_tasks_per_s",
)

OVERLOAD_TASKS = 250
OVERLOAD_SEED = 41


def run_overload(*, tasks: int = OVERLOAD_TASKS):
    """A 6x flash crowd against the canonical grid with bounded-queue
    admission and a staged brownout armed: the protected half of
    ``repro overload``.  Thresholds sit below the preset's so even the
    quick (120-task) variant sheds and transitions -- the gate must
    cover the overload code paths, not just pass through them."""
    from repro.sim.admission import AdmissionSpec, BrownoutSpec, QueueBoundSpec
    from repro.sim.experiment import run_experiment

    spec = baseline_spec(tasks=tasks).with_(
        seed=OVERLOAD_SEED,
        arrival_rate_per_s=4.0,
        flash_crowd=(3.0, 12.0, 6.0),
        low_priority_fraction=0.3,
        admission=AdmissionSpec(
            queue=QueueBoundSpec(max_pending=48),
            brownout=BrownoutSpec(
                enter_pending=24, exit_pending=8, dwell_s=0.5
            ),
        ),
    )
    return run_experiment(spec).report


@register("sim-overload", "sim",
          description="6x flash crowd under the brownout admission preset")
def _case_sim_overload(quick: bool) -> dict[str, float]:
    report = run_overload(tasks=120 if quick else OVERLOAD_TASKS)
    metrics = report_metrics(report)
    for name in OVERLOAD_METRIC_FIELDS:
        metrics[name] = float(getattr(report, name))
    return metrics


#: Extra fields exported by the SLO case.
SLO_METRIC_FIELDS = (
    "slo_objectives",
    "slo_breaches",
    "slo_alerts_fired",
    "slo_alerts_resolved",
)

SLO_TASKS = 250
SLO_SEED = 47


def run_slo(*, tasks: int = SLO_TASKS):
    """The overload flash crowd with the online SLO monitor armed over
    three tenants: tight latency/queue targets so breaches and
    burn-rate alerts actually fire even in the quick variant -- the
    gate must cover the monitor's code paths, not just pass through
    them."""
    from repro.sim.admission import AdmissionSpec, BrownoutSpec, QueueBoundSpec
    from repro.sim.experiment import run_experiment
    from repro.sim.slo import SLOObjective, SLOSpec

    spec = baseline_spec(tasks=tasks).with_(
        seed=SLO_SEED,
        arrival_rate_per_s=4.0,
        flash_crowd=(3.0, 12.0, 6.0),
        low_priority_fraction=0.3,
        tenants=3,
        admission=AdmissionSpec(
            queue=QueueBoundSpec(max_pending=48),
            brownout=BrownoutSpec(
                enter_pending=24, exit_pending=8, dwell_s=0.5
            ),
        ),
        slo=SLOSpec(objectives=(
            SLOObjective("latency", 1.5, percentile=95.0, window_s=10.0),
            SLOObjective("queue-depth", 24.0, window_s=10.0),
            SLOObjective("availability", 0.99, window_s=10.0),
            SLOObjective("latency", 2.0, percentile=90.0, window_s=10.0,
                         tenant="tenant0"),
        )),
    )
    return run_experiment(spec).report


@register("sim-slo", "sim",
          description="flash crowd with the online SLO monitor armed "
                      "(3 tenants)")
def _case_sim_slo(quick: bool) -> dict[str, float]:
    report = run_slo(tasks=120 if quick else SLO_TASKS)
    metrics = report_metrics(report)
    for name in SLO_METRIC_FIELDS:
        metrics[name] = float(getattr(report, name))
    metrics["slo_violated"] = float(len(report.slo_violated))
    for name, value in report.slo_attainment.items():
        metrics[f"attainment:{name}"] = float(value)
    for name, value in report.slo_error_budget_remaining.items():
        metrics[f"error_budget_remaining:{name}"] = float(value)
    return metrics


#: Extra fields exported by the failover case.
FAILOVER_METRIC_FIELDS = (
    "rms_crashes",
    "rms_gray_events",
    "failovers",
    "control_plane_downtime_s",
    "detections",
    "detection_latency_p50_s",
    "detection_latency_p95_s",
    "false_suspicions",
    "leases_expired",
    "orphaned_tasks",
    "orphans_recovered",
)

FAILOVER_TASKS = 250
FAILOVER_SEED = 43


def run_failover(*, tasks: int = FAILOVER_TASKS):
    """An RMS-crash storm against the canonical grid with the
    ``replicated`` failover preset armed: heartbeat detection,
    one-standby promotion, leased placements.  Long tasks against
    generous downtime draws so orphan recovery actually fires --
    the gate must cover the failover code paths, not just pass
    through them."""
    from repro.sim.experiment import run_experiment
    from repro.sim.failover import FAILOVER_PRESETS
    from repro.sim.faults import FaultSpec

    spec = baseline_spec(tasks=tasks).with_(
        seed=FAILOVER_SEED,
        arrival_rate_per_s=4.0,
        required_time_range_s=(2.0, 10.0),
        faults=FaultSpec(
            rms_crash_rate_per_s=0.05,
            rms_downtime_range_s=(4.0, 9.0),
            rms_gray_rate_per_s=0.02,
            rms_gray_duration_range_s=(2.0, 5.0),
            heartbeat_loss_prob=0.05,
            horizon_s=50.0,
        ),
        failover=FAILOVER_PRESETS["replicated"],
    )
    return run_experiment(spec).report


@register("sim-failover", "sim",
          description="RMS-crash storm under the replicated failover preset")
def _case_sim_failover(quick: bool) -> dict[str, float]:
    report = run_failover(tasks=120 if quick else FAILOVER_TASKS)
    metrics = report_metrics(report)
    for name in FAILOVER_METRIC_FIELDS:
        metrics[name] = float(getattr(report, name))
    return metrics


# ----------------------------------------------------------------------
# Engine microbench + million-task scale cases
# (kernels shared with benchmarks/bench_engine_scaling.py)
# ----------------------------------------------------------------------

ENGINE_MICRO_EVENTS = 200_000
ENGINE_MICRO_SEED = 37


def run_engine_micro(engine: str, *, n: int = ENGINE_MICRO_EVENTS):
    """The simulator-shaped event kernel on one engine.

    ``n`` Poisson-like arrivals are bulk-scheduled up front (the
    ``submit_workload_columns`` shape); every arrival callback then
    schedules one dynamic completion event (the ``_finish`` shape).
    Returns ``(processed_events, final_clock)`` -- both deterministic,
    so the harness's repetition check holds and only wall time varies.
    """
    import numpy as np

    from repro.sim.engine import make_engine

    rng = np.random.default_rng(ENGINE_MICRO_SEED)
    arrivals = np.cumsum(rng.exponential(0.5, n))
    service = rng.uniform(0.1, 2.0, n)
    eng = make_engine(engine)
    done = [0]
    cursor = [0]
    service_list = service.tolist()

    def finish() -> None:
        done[0] += 1

    def arrive() -> None:
        eng.schedule(service_list[cursor[0]], finish)
        cursor[0] += 1
    eng.schedule_batch(arrivals, [arrive] * n, handles=False)
    eng.run()
    return eng.processed_events, eng.now


def run_engine_drain(engine: str, *, n: int = ENGINE_MICRO_EVENTS):
    """Pure queue throughput: bulk-schedule ``n`` random times, drain.

    The widest heap-vs-calendar gap (no callback work at all); used by
    ``benchmarks/bench_engine_scaling.py`` for the speedup assertion.
    """
    import numpy as np

    from repro.sim.engine import make_engine

    rng = np.random.default_rng(ENGINE_MICRO_SEED)
    times = rng.uniform(0.0, 1_000.0, n)
    eng = make_engine(engine)
    eng.schedule_batch(times, [lambda: None] * n, handles=False)
    eng.run()
    return eng.processed_events, eng.now


@register("engine-micro-heap", "engine",
          description="simulator-shaped event kernel on the heap engine")
def _case_engine_heap(quick: bool) -> dict[str, float]:
    n = 20_000 if quick else ENGINE_MICRO_EVENTS
    events, now = run_engine_micro("heap", n=n)
    return {"events": events, "final_clock_s": now}


@register("engine-micro-calendar", "engine",
          description="simulator-shaped event kernel on the calendar queue")
def _case_engine_calendar(quick: bool) -> dict[str, float]:
    n = 20_000 if quick else ENGINE_MICRO_EVENTS
    events, now = run_engine_micro("calendar", n=n)
    return {"events": events, "final_clock_s": now}


def scale_spec(*, tasks: int):
    """The million-task scale scenario: the canonical two-node grid,
    calendar engine, columnar workload, bulk metrics."""
    return baseline_spec(tasks=tasks).with_(engine="calendar")


def run_scale(tasks: int, *, hostprof=None):
    """One end-to-end scale run through the streaming hot path."""
    from repro.sim.experiment import run_scale_experiment

    return run_scale_experiment(scale_spec(tasks=tasks), hostprof=hostprof).report


@register("sim-scale-1e5", "scale", quick_eligible=False,
          description="100k-task end-to-end run through the scale path")
def _case_scale_1e5(quick: bool) -> dict[str, float]:
    # Profiled on purpose: the committed BENCH_*.json snapshots carry
    # the matchmaking/dispatch host-time share as the tracked baseline
    # for ROADMAP item 1's "vectorize dispatch" follow-up.  The
    # profile leaves simulated metrics untouched, and the harness pops
    # the reserved key before its determinism check.
    from repro.sim.hostprof import HostPhaseProfiler

    prof = HostPhaseProfiler()
    report = run_scale(10_000 if quick else 100_000, hostprof=prof)
    metrics = report_metrics(report)
    metrics["tasks"] = report.completed + report.discarded + report.pending
    metrics["_host_phases"] = prof.phase_seconds()
    return metrics


@register("sim-scale-1e6", "scale", quick_eligible=False,
          description="1e6-task end-to-end run through the scale path")
def _case_scale_1e6(quick: bool) -> dict[str, float]:
    report = run_scale(50_000 if quick else 1_000_000)
    metrics = report_metrics(report)
    metrics["tasks"] = report.completed + report.discarded + report.pending
    return metrics


@register("parallel-runner", "harness", quick_eligible=False,
          description="strategy sweep through the ProcessPool runner")
def _case_parallel_runner(quick: bool) -> dict[str, float]:
    from repro.scheduling import ALL_STRATEGIES
    from repro.sim.experiment import ExperimentSpec
    from repro.sim.runner import ExperimentRunner

    base = ExperimentSpec(
        tasks=120, configurations=6, arrival_rate_per_s=2.5, seed=23
    )
    runner = ExperimentRunner(progress=False)
    results = runner.sweep(base, "strategy", sorted(ALL_STRATEGIES))
    return {
        "strategies": len(results),
        "executed": runner.last_stats.executed,
        "total_completed": sum(r.report.completed for r in results),
    }
