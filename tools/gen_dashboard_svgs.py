"""Regenerate the committed dashboard screenshots under docs/.

Runs one instrumented, traced chaos-with-resilience experiment and
extracts two representative SVG figures from the HTML dashboard
renderer -- a time-series step chart and the task-span timeline --
plus the full dashboard itself.  Run from the repository root::

    PYTHONPATH=src python tools/gen_dashboard_svgs.py

The outputs are committed (docs/dashboard_*.svg) so EXPERIMENTS.md can
embed real screenshots without readers running anything.  The spec is
fully seeded, so regeneration is deterministic.
"""

from __future__ import annotations

from pathlib import Path

from repro.grid.health import HealthPolicy
from repro.report_html import render_dashboard, svg_span_timeline, svg_step_chart
from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.sim.faults import FaultSpec
from repro.sim.resilience import CheckpointSpec, DeadlineSpec, ResilienceSpec
from repro.sim.telemetry import TelemetryRegistry, build_task_spans
from repro.sim.tracing import (
    InMemorySink,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
)

DOCS = Path(__file__).resolve().parent.parent / "docs"

#: The showcase run: chaotic enough that the breaker trips, retries
#: fire, and the timeline shows faults -- small enough to stay legible.
SPEC = ExperimentSpec(
    tasks=30,
    configurations=4,
    arrival_rate_per_s=4.0,
    gpp_fraction=0.3,
    seed=11,
    faults=FaultSpec(
        crash_rate_per_s=0.2,
        downtime_range_s=(1.0, 3.0),
        config_fault_prob=0.3,
        seu_rate_per_s=0.15,
        horizon_s=8.0,
    ),
    resilience=ResilienceSpec(
        breaker=HealthPolicy(min_events=2, open_threshold=0.4, open_duration_s=4.0),
        deadlines=DeadlineSpec(soft_factor=3.0, hard_factor=10.0, slack_s=0.5),
        checkpoint=CheckpointSpec(interval_s=0.25),
    ),
)


def main() -> None:
    telemetry = TelemetryRegistry()
    sink = InMemorySink()
    tracer = Tracer(TraceInvariantChecker(), sink)
    run_experiment(SPEC, tracer=tracer, telemetry=telemetry)
    events = canonical_events(list(sink.events))
    horizon = telemetry.meta.get("horizon_s")
    t_max = float(horizon) if isinstance(horizon, (int, float)) else None

    utilization = svg_step_chart(
        [
            (f"node {s.labels.get('node', '?')}", s.points)
            for s in telemetry.series("node_utilization")
        ],
        title="Node utilization",
        unit="busy fraction",
        t_max=t_max,
    )
    spans, instants = build_task_spans(events)
    timeline = svg_span_timeline(spans, instants, title="Task lifecycle spans")
    dashboard = render_dashboard(telemetry, events)

    DOCS.mkdir(parents=True, exist_ok=True)
    for name, markup in (
        ("dashboard_utilization.svg", wrap_standalone(utilization)),
        ("dashboard_timeline.svg", wrap_standalone(timeline)),
        ("dashboard_example.html", dashboard),
    ):
        path = DOCS / name
        path.write_text(markup, encoding="utf-8")
        print(f"wrote {path} ({len(markup)} bytes)")


def wrap_standalone(figure_html: str) -> str:
    """A committed .svg must be pure SVG: strip the <figure> wrapper
    and rebuild the HTML legend (series identity must never be lost)
    as SVG swatches appended below the chart."""
    import re

    start = figure_html.index("<svg")
    end = figure_html.index("</svg>") + len("</svg>")
    svg = figure_html[start:end]
    items = re.findall(
        r'<span class="swatch" style="background:(#[0-9a-f]{6})"></span>([^<]+)',
        figure_html,
    )
    if items:
        width = int(re.search(r'viewBox="0 0 (\d+) (\d+)"', svg).group(1))
        height = int(re.search(r'viewBox="0 0 (\d+) (\d+)"', svg).group(2))
        row = []
        x = 12
        y = height + 16
        for color, label in items:
            row.append(
                f'<rect x="{x}" y="{y - 8}" width="10" height="10" rx="2" '
                f'fill="{color}"/>'
                f'<text x="{x + 14}" y="{y + 1}" font-size="12" '
                f'fill="#52514e">{label.strip()}</text>'
            )
            x += 14 + 8 * len(label.strip()) + 24
        new_height = height + 28
        svg = svg.replace(
            f'viewBox="0 0 {width} {height}"',
            f'viewBox="0 0 {width} {new_height}"', 1,
        ).replace(f'height="{height}"', f'height="{new_height}"', 1)
        svg = svg[: svg.rindex("</svg>")] + "".join(row) + "</svg>"
    return svg.replace(
        "<svg ", '<svg xmlns="http://www.w3.org/2000/svg" ', 1
    )


if __name__ == "__main__":
    main()
